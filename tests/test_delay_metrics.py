"""Elmore and D2M delay metrics: analytic checks and invariants."""


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rc import RCTree
from repro.sta.d2m import LN2, d2m_delays, response_moments
from repro.sta.elmore import elmore_delay_to, elmore_delays


def single_rc(res: float, cap: float) -> RCTree:
    tree = RCTree()
    tree.add_root("drv")
    tree.add_node("sink", "drv", res_kohm=res, cap_ff=cap)
    return tree


def chain(values):
    """values: list of (res, cap) pairs."""
    tree = RCTree()
    tree.add_root("n0")
    prev = "n0"
    for i, (res, cap) in enumerate(values, 1):
        name = f"n{i}"
        tree.add_node(name, prev, res_kohm=res, cap_ff=cap)
        prev = name
    return tree, prev


class TestElmore:
    def test_single_segment_analytic(self):
        # Elmore of a single lumped RC is exactly R*C.
        tree = single_rc(2.0, 3.0)
        assert elmore_delay_to(tree, "sink") == pytest.approx(6.0)

    def test_two_segment_chain_analytic(self):
        # R1*(C1+C2) + R2*C2
        tree, last = chain([(1.0, 1.0), (2.0, 3.0)])
        assert elmore_delay_to(tree, last) == pytest.approx(1.0 * 4.0 + 2.0 * 3.0)

    def test_root_delay_zero(self):
        tree = single_rc(1.0, 1.0)
        assert elmore_delays(tree)["drv"] == 0.0

    def test_monotone_along_path(self):
        tree, _ = chain([(1.0, 1.0)] * 5)
        delays = elmore_delays(tree)
        values = [delays[f"n{i}"] for i in range(6)]
        assert values == sorted(values)

    def test_side_branch_load_slows_main_path(self):
        plain = single_rc(1.0, 1.0)
        loaded = single_rc(1.0, 1.0)
        loaded.add_node("branch", "drv", res_kohm=0.5, cap_ff=10.0)
        # Branch hangs at the driver: zero shared resistance, no effect.
        assert elmore_delay_to(loaded, "sink") == pytest.approx(
            elmore_delay_to(plain, "sink")
        )

    def test_branch_below_resistance_does_slow(self):
        tree, last = chain([(1.0, 1.0), (1.0, 1.0)])
        base = elmore_delay_to(tree, last)
        tree.add_node("tap", "n1", res_kohm=0.1, cap_ff=5.0)
        assert elmore_delay_to(tree, last) == pytest.approx(base + 1.0 * 5.0)


class TestD2M:
    def test_single_pole_analytic(self):
        # One RC: m1 = RC, m2 = (RC)^2 -> D2M = ln2 * RC (the exact 50%).
        tree = single_rc(2.0, 3.0)
        assert d2m_delays(tree)["sink"] == pytest.approx(LN2 * 6.0)

    def test_moments_chain(self):
        tree, last = chain([(1.0, 1.0), (1.0, 1.0)])
        m1, m2 = response_moments(tree)
        # m1 at n2: 1*(2) + 1*(1) = 3;  m2 at n2: 1*(C1 m1_1 + C2 m1_2) + 1*(C2 m1_2)
        assert m1[last] == pytest.approx(3.0)
        assert m2[last] == pytest.approx((2.0 + 3.0) + 3.0)

    def test_d2m_never_exceeds_elmore(self):
        tree, last = chain([(1.0, 2.0), (0.5, 1.0), (2.0, 4.0)])
        elmore = elmore_delays(tree)
        d2m = d2m_delays(tree)
        for node in ("n1", "n2", "n3"):
            assert d2m[node] <= elmore[node] + 1e-12

    def test_root_is_zero(self):
        tree = single_rc(1.0, 1.0)
        assert d2m_delays(tree)["drv"] == 0.0

    @given(
        st.lists(
            st.tuples(st.floats(0.01, 5.0), st.floats(0.01, 20.0)),
            min_size=1,
            max_size=8,
        )
    )
    @settings(max_examples=60)
    def test_d2m_elmore_bound_property(self, segments):
        tree, last = chain(segments)
        elmore = elmore_delays(tree)
        d2m = d2m_delays(tree)
        assert 0.0 <= d2m[last] <= elmore[last] + 1e-9

    def test_far_sink_d2m_closer_to_half_elmore(self):
        """On a long uniform line D2M approaches ~0.7x Elmore or less."""
        tree, last = chain([(0.1, 0.5)] * 40)
        elmore = elmore_delays(tree)[last]
        d2m = d2m_delays(tree)[last]
        assert d2m < 0.95 * elmore
