"""Top-level public API surface."""

import pytest

import repro


def test_version():
    assert repro.__version__


def test_lazy_exports_resolve():
    for name in repro.__all__:
        if name == "__version__":
            continue
        assert getattr(repro, name) is not None


def test_unknown_attribute_raises():
    with pytest.raises(AttributeError):
        repro.does_not_exist


def test_dir_lists_exports():
    assert "GoldenTimer" in dir(repro)
    assert "build_cls1" in dir(repro)


def test_quickstart_types_compose(mini_design):
    """The objects named in the module docstring wire together."""
    problem = repro.SkewVariationProblem.create(mini_design)
    assert problem.baseline.total_variation > 0
    timer = repro.GoldenTimer(mini_design.library)
    assert timer.library is mini_design.library
