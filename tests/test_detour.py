"""U-shape detour geometry."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import BBox, Point, path_length
from repro.route.detour import detour_polyline, u_shape_via


class TestUShape:
    def test_no_extra_returns_empty(self):
        assert u_shape_via(Point(0, 0), Point(10, 0), 0.0) == ()
        assert u_shape_via(Point(0, 0), Point(10, 0), -5.0) == ()

    def test_horizontal_travel_bulges_vertically(self):
        via = u_shape_via(Point(0, 0), Point(100, 0), 20.0)
        assert via == (Point(0, 10), Point(100, 10))

    def test_vertical_travel_bulges_horizontally(self):
        via = u_shape_via(Point(0, 0), Point(0, 100), 20.0)
        assert via == (Point(10, 0), Point(10, 100))

    def test_exact_extra_length(self):
        start, end = Point(0, 0), Point(60, 0)
        via = u_shape_via(start, end, 34.0)
        poly = [start, *via, end]
        assert path_length(poly) == pytest.approx(60.0 + 34.0)

    def test_region_flips_side(self):
        region = BBox(0, -50, 100, 2)  # no room above
        via = u_shape_via(Point(0, 0), Point(100, 0), 20.0, region)
        assert all(p.y < 0 for p in via)

    def test_region_clamps_when_neither_side_fits(self):
        region = BBox(0, -3, 100, 3)
        via = u_shape_via(Point(0, 0), Point(100, 0), 40.0, region)
        assert all(region.contains(p) for p in via)

    @given(
        st.floats(0, 200),
        st.floats(0, 200),
        st.floats(1.0, 150.0),
    )
    @settings(max_examples=40)
    def test_unclamped_length_exact(self, x, y, extra):
        start = Point(0.0, 0.0)
        end = Point(x, y)
        poly = [start, *u_shape_via(start, end, extra), end]
        assert path_length(poly) == pytest.approx(
            start.manhattan(end) + extra, rel=1e-9, abs=1e-6
        )


class TestDetourPolyline:
    def test_short_target_gives_direct(self):
        poly = detour_polyline(Point(0, 0), Point(10, 0), 5.0)
        assert poly == [Point(0, 0), Point(10, 0)]

    def test_long_target_detours(self):
        poly = detour_polyline(Point(0, 0), Point(10, 0), 30.0)
        assert path_length(poly) == pytest.approx(30.0)
