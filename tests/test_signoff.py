"""Signoff gate-delay correction model."""

import pytest

from repro.sta.signoff import signoff_gate_factor


class TestFactorShape:
    def test_near_unity(self):
        factor = signoff_gate_factor(8, 20.0, 10.0)
        assert 0.9 < factor < 1.1

    def test_load_term_increases_delay(self):
        light = signoff_gate_factor(8, 20.0, 2.0)
        heavy = signoff_gate_factor(8, 20.0, 120.0)
        assert heavy > light

    def test_small_drivers_more_load_sensitive(self):
        small = signoff_gate_factor(2, 20.0, 80.0)
        large = signoff_gate_factor(32, 20.0, 80.0)
        assert small > large

    def test_slow_input_reduces_factor_for_big_cells(self):
        fast = signoff_gate_factor(32, 5.0, 10.0)
        slow = signoff_gate_factor(32, 150.0, 10.0)
        assert slow < fast

    def test_deterministic(self):
        assert signoff_gate_factor(8, 33.0, 17.0) == signoff_gate_factor(
            8, 33.0, 17.0
        )

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            signoff_gate_factor(0, 10.0, 10.0)
        with pytest.raises(ValueError):
            signoff_gate_factor(8, -1.0, 10.0)
        with pytest.raises(ValueError):
            signoff_gate_factor(8, 10.0, -1.0)


class TestIntegration:
    def test_golden_timer_applies_correction(self, library_cls1, timer):
        """Golden pair delay differs from raw NLDM interpolation by the factor."""
        from repro.geometry import Point
        from repro.netlist.tree import ClockTree
        from repro.sta.gate import inverter_pair_timing, quantize_gate_inputs

        tree = ClockTree()
        src = tree.add_source(Point(0, 0))
        buf = tree.add_buffer(src, Point(60, 0), 8)
        tree.add_sink(buf, Point(120, 0))
        corner = library_cls1.corners.nominal
        timing = timer.analyze_corner(tree, corner)

        cell = library_cls1.cell(8, corner)
        # The timer evaluates gates on quantized (slew, load) — the same
        # values that key the incremental engine's gate memo.
        gate_slew, gate_load = quantize_gate_inputs(
            timing.input_slew[buf], timing.driver_load[buf]
        )
        raw = inverter_pair_timing(cell, gate_slew, gate_load)
        expected = raw.delay_ps * signoff_gate_factor(8, gate_slew, gate_load)
        assert timing.driver_delay[buf] == pytest.approx(expected, rel=1e-9)
