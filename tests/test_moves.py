"""Table-2 candidate move enumeration and application."""

import pytest

from repro.core.moves import (
    Move,
    MoveType,
    SurgeryIndex,
    apply_move,
    apply_move_undoable,
    enumerate_moves,
    surgery_candidates,
    undo_move,
)
from repro.geometry import Point
from repro.netlist.tree import ClockTree


def move_tree():
    """Two parallel leaf buffers at the same level, close together."""
    t = ClockTree()
    src = t.add_source(Point(0, 0))
    top = t.add_buffer(src, Point(100, 100), 16)
    a = t.add_buffer(top, Point(120, 110), 8)
    b = t.add_buffer(top, Point(130, 95), 8)
    child = t.add_buffer(a, Point(150, 120), 4)
    t.add_sink(child, Point(170, 125))
    t.add_sink(a, Point(140, 130))
    t.add_sink(b, Point(150, 90))
    return t, dict(src=src, top=top, a=a, b=b, child=child)


class TestEnumeration:
    def test_type1_count_for_midsize_buffer(self, library):
        t, n = move_tree()
        moves = enumerate_moves(t, library, buffers=[n["b"]])
        type1 = [m for m in moves if m.type is MoveType.SIZING_DISPLACE]
        # 8 directions x 2 size steps (X8 can go both ways).
        assert len(type1) == 16

    def test_type1_clamped_at_size_extremes(self, library):
        t, n = move_tree()
        t.resize_buffer(n["b"], 32)  # only down-sizing possible
        moves = enumerate_moves(t, library, buffers=[n["b"]])
        type1 = [m for m in moves if m.type is MoveType.SIZING_DISPLACE]
        assert len(type1) == 8
        assert all(m.size_step == -1 for m in type1)

    def test_type2_requires_child_buffer(self, library):
        t, n = move_tree()
        moves_a = enumerate_moves(t, library, buffers=[n["a"]])
        moves_b = enumerate_moves(t, library, buffers=[n["b"]])
        assert any(m.type is MoveType.CHILD_SIZING for m in moves_a)
        assert not any(m.type is MoveType.CHILD_SIZING for m in moves_b)

    def test_type3_same_level_in_window(self, library):
        t, n = move_tree()
        cands = surgery_candidates(t, n["child"], window_um=50.0)
        # child's driver is `a`; `b` is at the same level and nearby.
        assert cands == [n["b"]]

    def test_type3_excludes_own_subtree_and_parent(self, library):
        t, n = move_tree()
        cands = surgery_candidates(t, n["a"], window_um=1000.0)
        assert n["a"] not in cands
        assert n["child"] not in cands
        assert n["top"] not in cands  # top is the current driver

    def test_window_limits_candidates(self, library):
        t, n = move_tree()
        none = surgery_candidates(t, n["child"], window_um=1.0)
        assert none == []

    def test_all_buffers_by_default(self, library):
        t, _ = move_tree()
        moves = enumerate_moves(t, library)
        touched = {m.buffer for m in moves}
        assert touched == set(t.buffers())


class TestApplication:
    @pytest.fixture()
    def ctx(self, library):
        from repro.eco.legalize import Legalizer
        from repro.geometry import BBox

        t, n = move_tree()
        legalizer = Legalizer(region=BBox(0, 0, 300, 300), pitch_um=2.5)
        return t, n, legalizer, library

    def test_apply_type1(self, ctx):
        t, n, legalizer, library = ctx
        move = Move(
            type=MoveType.SIZING_DISPLACE, buffer=n["b"], dx=10, dy=0, size_step=1
        )
        apply_move(t, legalizer, library, move)
        assert t.node(n["b"]).size == 16
        assert t.node(n["b"]).location.x > 125.0
        t.validate()

    def test_apply_type2(self, ctx):
        t, n, legalizer, library = ctx
        move = Move(
            type=MoveType.CHILD_SIZING,
            buffer=n["a"],
            dx=0,
            dy=10,
            child=n["child"],
            child_size_step=1,
        )
        apply_move(t, legalizer, library, move)
        assert t.node(n["child"]).size == 8
        assert t.node(n["a"]).size == 8  # unchanged
        t.validate()

    def test_apply_type3(self, ctx):
        t, n, legalizer, library = ctx
        move = Move(type=MoveType.SURGERY, buffer=n["child"], new_parent=n["b"])
        apply_move(t, legalizer, library, move)
        assert t.parent(n["child"]) == n["b"]
        t.validate()

    def test_describe_strings(self):
        m1 = Move(MoveType.SIZING_DISPLACE, 5, dx=10, dy=-10, size_step=-1)
        assert "I:" in m1.describe()
        m3 = Move(MoveType.SURGERY, 5, new_parent=9)
        assert "III" in m3.describe()


class TestUndo:
    """apply_move_undoable / undo_move round-trips restore bit-exactly."""

    @staticmethod
    def _snapshot(t):
        return {
            nid: (
                t.parent(nid),
                t.children(nid),
                t.node(nid).location,
                t.node(nid).size,
                t.node(nid).via,
            )
            for nid in t.node_ids()
        }

    def _roundtrip(self, t, legalizer, library, move):
        before = self._snapshot(t)
        undo = apply_move_undoable(t, legalizer, library, move)
        assert undo.dirty  # every move dirties at least one driver
        after = self._snapshot(t)
        assert after != before  # the move did something
        undo_move(t, undo)
        t.validate()
        assert self._snapshot(t) == before
        return undo

    @pytest.fixture()
    def ctx(self, library):
        from repro.eco.legalize import Legalizer
        from repro.geometry import BBox

        t, n = move_tree()
        legalizer = Legalizer(region=BBox(0, 0, 300, 300), pitch_um=2.5)
        return t, n, legalizer, library

    def test_type1_roundtrip(self, ctx):
        t, n, legalizer, library = ctx
        move = Move(
            type=MoveType.SIZING_DISPLACE, buffer=n["b"], dx=10, dy=0, size_step=1
        )
        undo = self._roundtrip(t, legalizer, library, move)
        assert undo.dirty == frozenset({n["top"], n["b"]})

    def test_type2_roundtrip(self, ctx):
        t, n, legalizer, library = ctx
        move = Move(
            type=MoveType.CHILD_SIZING,
            buffer=n["a"],
            dx=0,
            dy=10,
            child=n["child"],
            child_size_step=1,
        )
        undo = self._roundtrip(t, legalizer, library, move)
        assert undo.dirty == frozenset({n["top"], n["a"], n["child"]})

    def test_type3_roundtrip_restores_child_order(self, ctx):
        t, n, legalizer, library = ctx
        # Give the old parent a second child after `child` so the undo
        # must reinsert at the original index, not append.
        t.add_sink(n["a"], Point(125, 140))
        t.set_edge_via(n["child"], (Point(130, 115),))
        order_before = t.children(n["a"])
        move = Move(type=MoveType.SURGERY, buffer=n["child"], new_parent=n["b"])
        undo = self._roundtrip(t, legalizer, library, move)
        assert undo.dirty == frozenset({n["a"], n["b"]})
        assert t.children(n["a"]) == order_before
        assert t.node(n["child"]).via == (Point(130, 115),)

    def test_undoable_matches_plain_apply(self, ctx):
        t, n, legalizer, library = ctx
        mirror, _ = move_tree()
        for move in (
            Move(MoveType.SIZING_DISPLACE, n["b"], dx=-10, dy=10, size_step=-1),
            Move(MoveType.SURGERY, n["child"], new_parent=n["b"]),
        ):
            apply_move_undoable(t, legalizer, library, move)
            apply_move(mirror, legalizer, library, move)
            assert self._snapshot(t) == self._snapshot(mirror)

    def test_revision_advances_on_apply_and_undo(self, ctx):
        t, n, legalizer, library = ctx
        move = Move(
            type=MoveType.SIZING_DISPLACE, buffer=n["b"], dx=10, dy=0, size_step=1
        )
        rev0 = t.revision
        undo = apply_move_undoable(t, legalizer, library, move)
        assert t.revision > rev0
        rev1 = t.revision
        undo_move(t, undo)
        # Geometry is restored but the mutation counter keeps counting —
        # that is what lets the incremental timer detect "same object,
        # touched since" and require an explicit rebase.
        assert t.revision > rev1


class TestSurgeryIndex:
    @staticmethod
    def _spread_tree(n_leaves=40, seed=11):
        """Wide two-level tree with buffers scattered over ~6x6 cells."""
        import numpy as np

        rng = np.random.default_rng(seed)
        t = ClockTree()
        src = t.add_source(Point(0, 0))
        tops = [
            t.add_buffer(
                src, Point(float(x), float(y)), 16
            )
            for x, y in rng.uniform(0.0, 300.0, size=(6, 2))
        ]
        for x, y in rng.uniform(0.0, 300.0, size=(n_leaves, 2)):
            top = tops[int(rng.integers(len(tops)))]
            leaf = t.add_buffer(top, Point(float(x), float(y)), 8)
            t.add_sink(leaf, Point(float(x) + 5.0, float(y)))
        return t

    def test_indexed_candidates_match_full_scan(self):
        t = self._spread_tree()
        for window in (30.0, 50.0, 120.0):
            index = SurgeryIndex(t, cell_um=window)
            for nid in t.buffers():
                assert surgery_candidates(
                    t, nid, window_um=window, index=index
                ) == surgery_candidates(t, nid, window_um=window)

    def test_near_is_superset_of_window(self):
        t = self._spread_tree(seed=7)
        index = SurgeryIndex(t, cell_um=50.0)
        center = Point(150.0, 150.0)
        got = set(index.near(center, 25.0))
        for nid in t.buffers():
            loc = t.node(nid).location
            if abs(loc.x - center.x) <= 25.0 and abs(loc.y - center.y) <= 25.0:
                assert nid in got

    def test_rejects_degenerate_cell(self):
        t = self._spread_tree(n_leaves=2)
        with pytest.raises(ValueError):
            SurgeryIndex(t, cell_um=0.0)
