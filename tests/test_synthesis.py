"""CTS end-to-end invariants."""

import numpy as np
import pytest

from repro.cts.synthesis import CTSConfig, synthesize_tree
from repro.eco.legalize import Legalizer
from repro.geometry import BBox, Point
from repro.sta.timer import GoldenTimer


@pytest.fixture(scope="module")
def synth(library_cls1):
    rng = np.random.default_rng(42)
    region = BBox(0, 0, 500, 500)
    sinks = [
        Point(round(float(rng.uniform(30, 470)), 1), round(float(rng.uniform(30, 470)), 1))
        for _ in range(60)
    ]
    config = CTSConfig(leaf_fanout=8, leaf_radius_um=100.0, balance_rounds=2)
    tree = synthesize_tree(
        Point(250, 0), sinks, library_cls1, region, Legalizer(region=region), config
    )
    return tree, sinks, region, config


class TestStructure:
    def test_all_sinks_present(self, synth):
        tree, sinks, _, _ = synth
        locations = {
            (tree.node(s).location.x, tree.node(s).location.y)
            for s in tree.sinks()
        }
        assert locations == {(p.x, p.y) for p in sinks}

    def test_valid_tree(self, synth):
        tree, _, _, _ = synth
        tree.validate()

    def test_every_sink_driven_by_buffer(self, synth):
        tree, _, _, _ = synth
        for sink in tree.sinks():
            assert tree.node(tree.parent(sink)).is_buffer

    def test_leaf_fanout_cap(self, synth):
        tree, _, _, config = synth
        for sink in tree.sinks():
            parent = tree.parent(sink)
            sinks_under = [
                c for c in tree.children(parent) if tree.node(c).is_sink
            ]
            assert len(sinks_under) <= config.leaf_fanout

    def test_no_overlong_edges(self, synth):
        tree, _, _, config = synth
        for nid in tree.node_ids():
            if tree.parent(nid) is None or tree.node(nid).is_sink:
                continue
            # Buffer-to-buffer spans obey the repeater rule (direct part);
            # snaking may extend routed length but not the span.
            parent = tree.parent(nid)
            span = tree.node(parent).location.manhattan(tree.node(nid).location)
            assert span <= config.repeater_spacing_um * 1.5

    def test_buffers_on_legal_sites(self, synth):
        tree, _, region, _ = synth
        for nid in tree.buffers():
            loc = tree.node(nid).location
            assert region.contains(loc)
            assert loc.x % 5.0 == pytest.approx(0.0, abs=1e-9)


class TestBalance:
    def test_balancing_tightens_nominal_skew(self, library_cls1):
        rng = np.random.default_rng(9)
        region = BBox(0, 0, 500, 500)
        sinks = [
            Point(round(float(rng.uniform(30, 470)), 1), round(float(rng.uniform(30, 470)), 1))
            for _ in range(40)
        ]
        legalizer = Legalizer(region=region)
        timer = GoldenTimer(library_cls1)
        nominal = library_cls1.corners.nominal

        def skew(tree):
            timing = timer.analyze_corner(tree, nominal)
            lats = [timing.arrival[s] for s in tree.sinks()]
            return max(lats) - min(lats)

        raw = synthesize_tree(
            Point(250, 0), sinks, library_cls1, region, legalizer,
            CTSConfig(balance_rounds=0),
        )
        balanced = synthesize_tree(
            Point(250, 0), sinks, library_cls1, region, legalizer,
            CTSConfig(balance_rounds=3),
        )
        assert skew(balanced) < skew(raw)

    def test_no_sinks_requires_error(self, library_cls1):
        region = BBox(0, 0, 100, 100)
        with pytest.raises(ValueError):
            synthesize_tree(
                Point(0, 0), [], library_cls1, region, Legalizer(region=region)
            )
