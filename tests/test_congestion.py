"""Router overhead model."""

import pytest

from repro.geometry import Point
from repro.route.congestion import (
    BASE_OVERHEAD,
    JITTER_SPAN,
    chain_length_factor,
    routed_length_factor,
)


class TestFactor:
    def test_always_above_one(self):
        assert routed_length_factor(1, 0.0) > 1.0

    def test_monotone_in_fanout(self):
        small = routed_length_factor(1, 5000.0)
        large = routed_length_factor(30, 5000.0)
        assert large > small

    def test_monotone_in_density(self):
        sparse = routed_length_factor(4, 1000.0)
        dense = routed_length_factor(4, 50000.0)
        assert dense > sparse

    def test_density_saturates(self):
        a = routed_length_factor(4, 100000.0)
        b = routed_length_factor(4, 1000000.0)
        assert a == pytest.approx(b)

    def test_invalid_fanout_rejected(self):
        with pytest.raises(ValueError):
            routed_length_factor(0, 100.0)

    def test_bounded(self):
        worst = routed_length_factor(
            1000, 1e9, Point(0, 0), Point(1, 1)
        )
        assert worst < 1.25


class TestJitter:
    def test_deterministic_per_edge(self):
        a = routed_length_factor(3, 1000.0, Point(10, 20), Point(50, 60))
        b = routed_length_factor(3, 1000.0, Point(10, 20), Point(50, 60))
        assert a == b

    def test_varies_across_edges(self):
        values = {
            routed_length_factor(3, 1000.0, Point(0, 0), Point(float(i), 7.0))
            for i in range(20)
        }
        assert len(values) > 10

    def test_jitter_within_span(self):
        base = routed_length_factor(3, 1000.0)  # expected jitter
        for i in range(20):
            v = routed_length_factor(3, 1000.0, Point(0, 0), Point(float(i), 3.0))
            assert abs(v - base) <= JITTER_SPAN / 2 + 1e-9


class TestChainFactor:
    def test_expected_jitter(self):
        assert chain_length_factor() == routed_length_factor(1, 0.0)

    def test_small_overhead(self):
        assert 1.0 + BASE_OVERHEAD < chain_length_factor() < 1.08
