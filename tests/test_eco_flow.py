"""Algorithm 1: LP-guided ECO realization accuracy."""

import numpy as np
import pytest

from repro.core.eco_flow import LPGuidedECO
from repro.core.lp import GlobalSkewLP, build_model_data
from repro.tech.ratio_bounds import fit_all_ratio_bounds


@pytest.fixture(scope="module")
def realized(mini_design, mini_problem, stage_luts):
    """Solve the LP on mini and realize everything in one shot."""
    ratio_bounds = fit_all_ratio_bounds(mini_design.library)
    data = build_model_data(
        mini_design.tree,
        mini_problem.timer,
        mini_design.pairs,
        mini_problem.alphas,
        stage_luts,
    )
    lp = GlobalSkewLP(data, ratio_bounds)
    solution = lp.minimize_changes(
        lp.minimize_variation().achieved_variation_bound * 1.1
    )
    timings = {
        c.name: mini_problem.timer.analyze_corner(mini_design.tree, c)
        for c in mini_design.library.corners
    }
    eco = LPGuidedECO(
        mini_design.library, stage_luts, mini_design.legalizer
    )
    trial = mini_design.tree.clone()
    report = eco.realize(trial, data, solution, timings)
    return data, solution, trial, report, timings


class TestRealization:
    def test_tree_stays_valid(self, realized):
        _, _, trial, _, _ = realized
        trial.validate()

    def test_some_arcs_realized(self, realized):
        _, _, _, report, _ = realized
        assert len(report) > 0

    def test_estimates_near_targets(self, realized):
        """The LUT search finds configs close to what the LP asked for."""
        _, _, _, report, _ = realized
        errs = [
            np.mean(np.abs(np.subtract(r.estimates_ps, r.targets_ps)))
            for r in report
        ]
        assert float(np.mean(errs)) < 10.0

    def test_realized_delays_track_estimates(
        self, realized, mini_problem, mini_design
    ):
        data, _, trial, report, _ = realized
        timer = mini_problem.timer
        new_t = {
            c.name: timer.analyze_corner(trial, c)
            for c in mini_design.library.corners
        }
        names = [c.name for c in mini_design.library.corners]
        gaps = []
        for r in report:
            arc = data.arcs[r.arc_index]
            real = [
                new_t[n].arrival[arc.end] - new_t[n].arrival[arc.start]
                for n in names
            ]
            gaps.append(np.mean(np.abs(np.subtract(real, r.estimates_ps))))
        assert float(np.mean(gaps)) < 12.0

    def test_noop_candidate_skips_unhelpful_arcs(
        self, realized, mini_design, mini_problem, stage_luts
    ):
        """Arcs whose targets equal current delays are left untouched."""
        data, solution, _, _, timings = realized
        eco = LPGuidedECO(
            mini_design.library, stage_luts, mini_design.legalizer
        )
        # Zero-delta solution: realize must not touch anything.
        from repro.core.lp import LPSolution

        noop = LPSolution(
            status="optimal",
            objective_abs_delta=0.0,
            achieved_variation_bound=0.0,
            delta=np.zeros_like(solution.delta),
            pair_variation=np.zeros_like(solution.pair_variation),
        )
        trial = mini_design.tree.clone()
        report = eco.realize(trial, data, noop, timings)
        assert report == []
        assert trial.total_wirelength() == pytest.approx(
            mini_design.tree.total_wirelength()
        )

    def test_subset_realization(self, realized, mini_design, stage_luts):
        data, solution, _, _, timings = realized
        eco = LPGuidedECO(
            mini_design.library, stage_luts, mini_design.legalizer
        )
        nonzero = solution.nonzero_arcs()
        subset = nonzero[:2]
        trial = mini_design.tree.clone()
        report = eco.realize(trial, data, solution, timings, arc_indices=subset)
        assert {r.arc_index for r in report} <= set(subset)
