"""Shared fixtures.

Heavy objects (libraries, designs, characterized LUTs, golden timers) are
session-scoped: they are deterministic and read-only in tests, so sharing
them keeps the suite fast without coupling tests.
"""

from __future__ import annotations

import pytest

from repro.core.objective import SkewVariationProblem
from repro.sta.timer import GoldenTimer
from repro.tech.library import default_library
from repro.tech.stage_lut import characterize_stage_luts
from repro.testcases.mini import build_mini


@pytest.fixture(scope="session")
def library():
    """Full four-corner library."""
    return default_library()


@pytest.fixture(scope="session")
def library_cls1():
    """CLS1 corner subset (c0, c1, c3)."""
    return default_library(("c0", "c1", "c3"))


@pytest.fixture(scope="session")
def timer(library_cls1):
    return GoldenTimer(library_cls1)


@pytest.fixture(scope="session")
def mini_design():
    """A small end-to-end design (balanced CTS tree + datapaths)."""
    return build_mini()


@pytest.fixture(scope="session")
def mini_problem(mini_design):
    return SkewVariationProblem.create(mini_design)


@pytest.fixture(scope="session")
def stage_luts(library_cls1):
    """Characterized stage-delay LUTs for the CLS1 corner set."""
    return characterize_stage_luts(library_cls1)
