"""Analytical delta-latency estimates vs golden measurements."""

import numpy as np
import pytest

from repro.core.ml.analytical import (
    estimate_move_impact,
    estimate_move_impacts,
    estimate_net,
)
from repro.core.moves import Move, MoveType, apply_move, enumerate_moves
from repro.geometry import Point
from repro.sta.timer import GoldenTimer


@pytest.fixture(scope="module")
def scene(library_cls1):
    """A small tree plus its timing snapshot."""
    from repro.eco.legalize import Legalizer
    from repro.geometry import BBox
    from repro.netlist.tree import ClockTree

    t = ClockTree()
    src = t.add_source(Point(0, 0))
    top = t.add_buffer(src, Point(90, 90), 16)
    a = t.add_buffer(top, Point(160, 120), 8)
    b = t.add_buffer(top, Point(150, 60), 8)
    for loc in [(200, 130), (190, 110), (210, 120)]:
        t.add_sink(a, Point(*loc))
    for loc in [(190, 55), (200, 70)]:
        t.add_sink(b, Point(*loc))
    timer = GoldenTimer(library_cls1)
    timings = {
        c.name: timer.analyze_corner(t, c) for c in library_cls1.corners
    }
    legalizer = Legalizer(region=BBox(0, 0, 400, 400), pitch_um=1.0)
    return t, dict(src=src, top=top, a=a, b=b), timer, timings, legalizer


class TestEstimateNet:
    def test_star_estimate_tracks_timer_with_router_gap(self, scene, library_cls1):
        """The star estimate of an *unmoved* net tracks the golden timer,
        falling short only by the router's length-overhead model (the
        deliberate estimate-vs-actual gap the ML predictors learn)."""
        t, n, timer, timings, _ = scene
        corner = library_cls1.corners.nominal
        timing = timings[corner.name]
        children = [
            (c, t.node(c).location, library_cls1.sink_cap_ff)
            for c in t.children(n["a"])
        ]
        est = estimate_net(
            library_cls1,
            corner,
            8,
            t.node(n["a"]).location,
            children,
            timing.input_slew[n["a"]],
            "star",
            "d2m",
            segment_um=20.0,  # match the golden discretization
        )
        # Estimate within ~20% of golden, and never above it: golden's
        # routed lengths are always >= the estimated polylines.
        assert est.pair_delay_ps == pytest.approx(
            timing.driver_delay[n["a"]], rel=0.2
        )
        assert est.pair_delay_ps <= timing.driver_delay[n["a"]] + 1e-9
        for child in t.children(n["a"]):
            golden = timing.edge_delay[child]
            assert est.wire_delay_ps["d2m"][child] <= golden + 1e-9
            assert est.wire_delay_ps["d2m"][child] == pytest.approx(
                golden, rel=0.45, abs=0.1
            )

    def test_rsmt_wirelength_not_above_star(self, scene, library_cls1):
        t, n, _, timings, _ = scene
        corner = library_cls1.corners.nominal
        timing = timings[corner.name]
        children = [
            (c, t.node(c).location, library_cls1.sink_cap_ff)
            for c in t.children(n["a"])
        ]
        star = estimate_net(
            library_cls1, corner, 8, t.node(n["a"]).location, children,
            timing.input_slew[n["a"]], "star",
        )
        shared = estimate_net(
            library_cls1, corner, 8, t.node(n["a"]).location, children,
            timing.input_slew[n["a"]], "rsmt",
        )
        assert shared.wirelength_um <= star.wirelength_um + 1e-6

    def test_unknown_models_rejected(self, scene, library_cls1):
        t, n, _, timings, _ = scene
        corner = library_cls1.corners.nominal
        with pytest.raises(ValueError):
            estimate_net(
                library_cls1, corner, 8, Point(0, 0),
                [(1, Point(1, 1), 1.0)], 20.0, "maze",
            )
        with pytest.raises(ValueError):
            estimate_net(
                library_cls1, corner, 8, Point(0, 0),
                [(1, Point(1, 1), 1.0)], 20.0, "star", "awe",
            )


class TestMoveImpactAccuracy:
    def golden_delta(self, scene, move, corner_name):
        t, _, timer, timings, legalizer = scene
        trial = t.clone()
        apply_move(trial, legalizer, timer.library, move)
        corner = timer.library.corners.by_name(corner_name)
        after = timer.analyze_corner(trial, corner)
        sinks = trial.subtree_sinks(move.buffer)
        return float(
            np.mean([after.arrival[s] - timings[corner_name].arrival[s] for s in sinks])
        )

    def test_displacement_estimate_tracks_golden(self, scene, library_cls1):
        t, n, _, timings, _ = scene
        move = Move(
            type=MoveType.SIZING_DISPLACE, buffer=n["a"], dx=10, dy=10, size_step=1
        )
        impact = estimate_move_impact(
            t, library_cls1, timings, move, "star", "d2m"
        )
        golden = self.golden_delta(scene, move, "c0")
        # Tracks golden within the deliberate router/signoff modeling gap
        # (the gap the ML predictors are trained to close).
        assert impact.subtree["c0"] == pytest.approx(golden, abs=6.0)

    def test_surgery_estimate_tracks_golden(self, scene, library_cls1):
        t, n, _, timings, _ = scene
        move = Move(type=MoveType.SURGERY, buffer=n["a"], new_parent=n["b"])
        impact = estimate_move_impact(
            t, library_cls1, timings, move, "star", "d2m"
        )
        golden = self.golden_delta(scene, move, "c0")
        # Surgery deltas are larger; allow proportional tolerance.
        assert impact.subtree["c0"] == pytest.approx(golden, abs=5.0 + 0.2 * abs(golden))

    def test_surgery_to_childless_driver(self, scene, library_cls1):
        """Regression: reassigning onto a buffer that currently drives
        nothing (orphaned by an earlier surgery) must not crash."""
        t, n, timer, _, _ = scene
        tree = t.clone()
        # Orphan buffer b by moving its sinks under a.
        for sink in list(tree.children(n["b"])):
            tree.reassign_parent(sink, n["a"])
        assert tree.children(n["b"]) == ()
        timings = {
            c.name: timer.analyze_corner(tree, c)
            for c in library_cls1.corners
        }
        move = Move(type=MoveType.SURGERY, buffer=n["a"], new_parent=n["b"])
        impact = estimate_move_impact(
            tree, library_cls1, timings, move, "star", "d2m"
        )
        for value in impact.subtree.values():
            assert np.isfinite(value)

    def test_both_metrics_returned(self, scene, library_cls1):
        t, n, _, timings, _ = scene
        move = Move(
            type=MoveType.SIZING_DISPLACE, buffer=n["b"], dx=-10, dy=0, size_step=-1
        )
        impacts = estimate_move_impacts(t, library_cls1, timings, move, "rsmt")
        assert set(impacts) == {"elmore", "d2m"}

    def test_estimates_correlate_with_golden_over_move_set(
        self, scene, library_cls1
    ):
        """Across many moves, analytical estimates rank like golden."""
        t, n, timer, timings, legalizer = scene
        moves = enumerate_moves(t, library_cls1, buffers=[n["a"], n["b"]])[:24]
        est, gold = [], []
        for move in moves:
            impact = estimate_move_impact(
                t, library_cls1, timings, move, "star", "d2m"
            )
            est.append(impact.subtree["c0"])
            gold.append(self.golden_delta(scene, move, "c0"))
        corr = float(np.corrcoef(est, gold)[0, 1])
        assert corr > 0.8
