"""CTS sink clustering."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cts.clustering import cluster_points
from repro.geometry import Point

coords = st.floats(0.0, 1000.0, allow_nan=False)
point_lists = st.lists(st.builds(Point, coords, coords), min_size=1, max_size=60)


def test_empty_input():
    assert cluster_points([], 4, 100.0) == []


def test_single_point():
    clusters = cluster_points([Point(5, 5)], 4, 100.0)
    assert len(clusters) == 1
    assert clusters[0].center == Point(5, 5)


def test_fanout_cap_respected():
    pts = [Point(float(i), 0.0) for i in range(20)]
    clusters = cluster_points(pts, 6, 1e9)
    assert all(len(c) <= 6 for c in clusters)


def test_radius_cap_respected():
    pts = [Point(0, 0), Point(500, 0), Point(0, 500), Point(500, 500)]
    clusters = cluster_points(pts, 10, 100.0)
    # The four corners are too spread to share a cluster.
    assert len(clusters) == 4


def test_invalid_fanout_rejected():
    with pytest.raises(ValueError):
        cluster_points([Point(0, 0)], 0, 10.0)


def test_center_is_median():
    pts = [Point(0, 0), Point(10, 0), Point(100, 0)]
    clusters = cluster_points(pts, 10, 1e9)
    assert clusters[0].center == Point(10, 0)


def test_deterministic():
    pts = [Point(float(i * 37 % 100), float(i * 53 % 90)) for i in range(30)]
    a = cluster_points(pts, 5, 80.0)
    b = cluster_points(pts, 5, 80.0)
    assert [c.indices for c in a] == [c.indices for c in b]


@given(point_lists)
@settings(max_examples=40, deadline=None)
def test_partition_property(pts):
    """Clusters partition the index set exactly."""
    clusters = cluster_points(pts, 8, 150.0)
    seen = [i for c in clusters for i in c.indices]
    assert sorted(seen) == list(range(len(pts)))
    for cluster in clusters:
        assert len(cluster) <= 8 or len(cluster) == 1


@given(point_lists)
@settings(max_examples=40, deadline=None)
def test_radius_property(pts):
    clusters = cluster_points(pts, 1000, 120.0)
    for cluster in clusters:
        if len(cluster) == 1:
            continue
        for idx in cluster.indices:
            assert pts[idx].manhattan(cluster.center) <= 120.0 + 1e-6
