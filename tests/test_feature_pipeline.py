"""Differential tests for the incremental candidate pipeline.

The batched/cached featurization path (``CandidatePipeline``) must be a
pure performance transform: its per-corner design matrices have to match
the original per-move ``extract_features`` vectors to 1e-9 ps — on fresh
trees, on randomized move subsets, and (critically) after committed
moves invalidate part of the cache.  The full Algorithm-2 loop must then
produce an identical committed-move trajectory with the pipeline on or
off.
"""

import random

import numpy as np
import pytest

from repro.core.local_opt import LocalOptConfig, LocalOptimizer
from repro.core.ml.features import (
    SIDE_EFFECT_VARIANT,
    extract_features,
    feature_matrix,
)
from repro.core.ml.pipeline import CandidatePipeline, move_dependencies
from repro.core.ml.training import train_predictor
from repro.core.moves import MoveType, enumerate_moves
from repro.core.objective import SkewVariationProblem
from repro.testcases.cls1 import build_cls1
from repro.testcases.mini import build_mini

#: Agreement bound between the batched and per-move paths (ps).
TOL = 1e-9


def _assert_batch_matches(problem, tree, timings, moves, batch):
    """Pipeline output vs fresh per-move extraction, all corners."""
    library = problem.design.library
    reference = [extract_features(tree, library, timings, m) for m in moves]
    for corner in library.corners:
        ref = feature_matrix(reference, corner.name)
        got = batch.matrices[corner.name]
        assert got.shape == ref.shape
        assert float(np.max(np.abs(got - ref))) <= TOL
    # The scorer also reads the star side-effect impacts off each
    # component; those must agree too.
    for comp, feats in zip(batch.components, reference):
        side_c = comp.impacts[SIDE_EFFECT_VARIANT]
        side_f = feats.impacts[SIDE_EFFECT_VARIANT]
        for name in side_f.old_siblings:
            assert abs(side_c.old_siblings[name] - side_f.old_siblings[name]) <= TOL
            assert abs(side_c.new_siblings[name] - side_f.new_siblings[name]) <= TOL


def _invalidate_like_optimizer(problem, pipeline, move):
    """Mirror ``LocalOptimizer._invalidate_pipeline`` after a commit."""
    touched = problem.engine().last_touched
    if touched is None:
        pipeline.flush()
        return
    pipeline.invalidate(
        touched_local=touched[0],
        touched_arrival=touched[1],
        structural=move.type is MoveType.SURGERY,
    )


def _run_rounds(design, rounds, subset, seed):
    """Featurize / commit / invalidate / re-featurize and diff each round."""
    problem = SkewVariationProblem.create(design)
    tree = design.tree.clone()
    result = problem.evaluate(tree)
    pipeline = CandidatePipeline(problem.design.library)
    rng = random.Random(seed)

    for _ in range(rounds):
        moves = enumerate_moves(tree, problem.design.library)
        if len(moves) > subset:
            moves = rng.sample(moves, subset)
        batch = pipeline.featurize(tree, result.per_corner, moves)
        _assert_batch_matches(problem, tree, result.per_corner, moves, batch)
        # Commit a random candidate and invalidate exactly like the
        # optimizer does; the survivors must still match fresh
        # extraction against the *new* timing snapshot next round.
        move = rng.choice(moves)
        result = problem.commit_move(tree, move)
        _invalidate_like_optimizer(problem, pipeline, move)
    return pipeline


class TestBatchEqualsPerMove:
    def test_mini_full_batch(self, mini_problem):
        problem = mini_problem
        tree = problem.design.tree
        result = problem.baseline
        moves = enumerate_moves(tree, problem.design.library)
        pipeline = CandidatePipeline(problem.design.library)
        batch = pipeline.featurize(tree, result.per_corner, moves)
        _assert_batch_matches(problem, tree, result.per_corner, moves, batch)
        assert pipeline.stats["move_misses"] == len(moves)

    def test_repeat_featurize_all_hits_and_identical(self, mini_problem):
        problem = mini_problem
        tree = problem.design.tree
        result = problem.baseline
        moves = enumerate_moves(tree, problem.design.library)
        pipeline = CandidatePipeline(problem.design.library)
        first = pipeline.featurize(tree, result.per_corner, moves)
        second = pipeline.featurize(tree, result.per_corner, moves)
        assert pipeline.stats["move_hits"] == len(moves)
        for corner in problem.design.library.corners:
            assert np.array_equal(
                first.matrices[corner.name], second.matrices[corner.name]
            )

    def test_mini_after_committed_moves(self):
        _run_rounds(build_mini(), rounds=4, subset=60, seed=7)

    def test_cls1_randomized_batches_after_commits(self):
        pipeline = _run_rounds(build_cls1(1), rounds=3, subset=60, seed=11)
        # On CLS1v1 the dirty frontier is a sliver of the tree, so
        # cross-round reuse must actually happen.
        assert pipeline.stats["move_hits"] > 0


class TestInvalidation:
    def test_dependencies_cover_commit_frontier(self, mini_problem):
        """A cached move on the committed buffer itself must be evicted."""
        problem = SkewVariationProblem.create(build_mini())
        tree = problem.design.tree.clone()
        result = problem.evaluate(tree)
        moves = enumerate_moves(tree, problem.design.library)
        displace = [m for m in moves if m.type is not MoveType.SURGERY]
        assert displace
        committed = displace[0]
        same_buffer = [m for m in moves if m.buffer == committed.buffer]
        pipeline = CandidatePipeline(problem.design.library)
        pipeline.featurize(tree, result.per_corner, moves)
        result = problem.commit_move(tree, committed)
        _invalidate_like_optimizer(problem, pipeline, committed)
        for move in same_buffer:
            assert move not in pipeline._components

    def test_surgery_commit_flushes(self):
        problem = SkewVariationProblem.create(build_mini())
        tree = problem.design.tree.clone()
        result = problem.evaluate(tree)
        moves = enumerate_moves(tree, problem.design.library)
        surgeries = [m for m in moves if m.type is MoveType.SURGERY]
        if not surgeries:
            pytest.skip("MINI enumerates no surgery moves")
        pipeline = CandidatePipeline(problem.design.library)
        pipeline.featurize(tree, result.per_corner, moves)
        result = problem.commit_move(tree, surgeries[0])
        _invalidate_like_optimizer(problem, pipeline, surgeries[0])
        assert len(pipeline._components) == 0
        assert pipeline.stats["flushes"] >= 1

    def test_move_dependencies_shape(self, mini_problem):
        tree = mini_problem.design.tree
        moves = enumerate_moves(tree, mini_problem.design.library)
        for move in moves:
            local, arrival = move_dependencies(tree, move)
            assert move.buffer in local
            if move.type is MoveType.SURGERY:
                assert move.new_parent in arrival and move.buffer in arrival
            else:
                assert not arrival


class TestTrajectoryIdentity:
    def test_pipeline_matches_legacy_path(self, library_cls1):
        """Algorithm 2 commits the same moves with the pipeline on/off."""
        predictor = train_predictor(library_cls1, [], "full_rsmt_d2m")
        histories = []
        finals = []
        for use_pipeline in (True, False):
            problem = SkewVariationProblem.create(build_mini())
            optimizer = LocalOptimizer(
                problem,
                predictor,
                LocalOptConfig(
                    max_iterations=5,
                    max_batches_per_iteration=2,
                    use_pipeline=use_pipeline,
                ),
            )
            outcome = optimizer.run()
            histories.append(
                [
                    (h.move, h.predicted_reduction_ps, h.objective_after_ps)
                    for h in outcome.history
                ]
            )
            finals.append(outcome.final_objective_ps)
        assert histories[0] == histories[1]
        assert finals[0] == finals[1]

    def test_stats_payload_present(self, library_cls1):
        predictor = train_predictor(library_cls1, [], "full_rsmt_d2m")
        problem = SkewVariationProblem.create(build_mini())
        optimizer = LocalOptimizer(
            problem, predictor, LocalOptConfig(max_iterations=2)
        )
        outcome = optimizer.run()
        stats = outcome.stats
        assert stats is not None
        assert set(stats) == {
            "stage",
            "pipeline",
            "engine",
            "parallel",
            "workers",
        }
        assert stats["parallel"] is None  # serial run: no pool engaged
        assert stats["workers"]["effective"] == 1
        assert "featurize" in stats["stage"]["seconds"]
        assert "predict" in stats["stage"]["seconds"]
        assert stats["pipeline"] is not None
        assert stats["pipeline"]["move_misses"] > 0
        assert stats["pipeline"]["feature_backend"] == "kernel"
