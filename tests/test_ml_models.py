"""The three regressor families: ANN, RBF-kernel SVR, HSM."""

import numpy as np
import pytest

from repro.core.ml.ann import ANNConfig, ANNRegressor
from repro.core.ml.hsm import HybridSurrogateModel, kfold_mse
from repro.core.ml.svr import RBFKernelSVR, SVRConfig


def toy_problem(n=200, seed=0, noise=0.05):
    """Smooth nonlinear target on 3 features."""
    rng = np.random.default_rng(seed)
    x = rng.uniform(-1, 1, size=(n, 3))
    y = (
        2.0 * x[:, 0]
        - 1.5 * x[:, 1] ** 2
        + np.sin(3.0 * x[:, 2])
        + rng.normal(0, noise, n)
    )
    return x, y


class TestANN:
    def test_fits_nonlinear_function(self):
        x, y = toy_problem()
        model = ANNRegressor(ANNConfig(max_epochs=200, seed=1))
        model.fit(x, y)
        pred = model.predict(x)
        mse = float(np.mean((pred - y) ** 2))
        assert mse < 0.15 * float(np.var(y))

    def test_unfitted_predict_raises(self):
        with pytest.raises(RuntimeError):
            ANNRegressor().predict(np.zeros((1, 3)))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            ANNRegressor().fit(np.zeros(5), np.zeros(5))

    def test_deterministic_given_seed(self):
        x, y = toy_problem(n=80)
        cfg = ANNConfig(max_epochs=50, seed=3)
        a = ANNRegressor(cfg).fit(x, y).predict(x[:5])
        b = ANNRegressor(cfg).fit(x, y).predict(x[:5])
        assert np.allclose(a, b)

    def test_constant_feature_tolerated(self):
        x, y = toy_problem(n=60)
        x = np.hstack([x, np.ones((len(x), 1))])
        model = ANNRegressor(ANNConfig(max_epochs=30))
        model.fit(x, y)
        assert np.all(np.isfinite(model.predict(x)))


class TestSVR:
    def test_fits_nonlinear_function(self):
        x, y = toy_problem()
        model = RBFKernelSVR(SVRConfig(alpha=0.1))
        model.fit(x, y)
        mse = float(np.mean((model.predict(x) - y) ** 2))
        assert mse < 0.1 * float(np.var(y))

    def test_interpolates_training_points_with_small_alpha(self):
        x, y = toy_problem(n=50, noise=0.0)
        model = RBFKernelSVR(SVRConfig(alpha=1e-6))
        model.fit(x, y)
        assert np.allclose(model.predict(x), y, atol=0.05)

    def test_regularization_smooths(self):
        x, y = toy_problem(n=60, noise=0.5)
        tight = RBFKernelSVR(SVRConfig(alpha=1e-6)).fit(x, y)
        smooth = RBFKernelSVR(SVRConfig(alpha=10.0)).fit(x, y)
        res_tight = float(np.mean((tight.predict(x) - y) ** 2))
        res_smooth = float(np.mean((smooth.predict(x) - y) ** 2))
        assert res_tight < res_smooth

    def test_unfitted_predict_raises(self):
        with pytest.raises(RuntimeError):
            RBFKernelSVR().predict(np.zeros((1, 3)))

    def test_explicit_gamma(self):
        x, y = toy_problem(n=50)
        model = RBFKernelSVR(SVRConfig(gamma=0.5)).fit(x, y)
        assert model._gamma == 0.5


class TestHSM:
    def factories(self):
        return [
            ("svr", lambda: RBFKernelSVR(SVRConfig(alpha=0.1))),
            ("ann", lambda: ANNRegressor(ANNConfig(max_epochs=40, seed=2))),
        ]

    def test_weights_sum_to_one(self):
        x, y = toy_problem(n=120)
        hsm = HybridSurrogateModel(self.factories()).fit(x, y)
        assert sum(hsm.weights) == pytest.approx(1.0)
        assert len(hsm.weights) == 2

    def test_blend_tracks_target(self):
        x, y = toy_problem(n=150)
        hsm = HybridSurrogateModel(self.factories()).fit(x, y)
        mse = float(np.mean((hsm.predict(x) - y) ** 2))
        assert mse < 0.2 * float(np.var(y))

    def test_better_model_gets_more_weight(self):
        x, y = toy_problem(n=150, noise=0.01)

        class Bad:
            def fit(self, x, y):
                return self

            def predict(self, x):
                return np.zeros(len(np.atleast_2d(x)))

        hsm = HybridSurrogateModel(
            [
                ("svr", lambda: RBFKernelSVR(SVRConfig(alpha=0.1))),
                ("bad", Bad),
            ]
        ).fit(x, y)
        weights = dict(zip(hsm.component_names(), hsm.weights))
        assert weights["svr"] > 0.9

    def test_empty_factories_rejected(self):
        with pytest.raises(ValueError):
            HybridSurrogateModel([])

    def test_unfitted_predict_raises(self):
        with pytest.raises(RuntimeError):
            HybridSurrogateModel(self.factories()).predict(np.zeros((1, 3)))

    def test_kfold_mse_reasonable(self):
        x, y = toy_problem(n=100)
        mse = kfold_mse(
            lambda: RBFKernelSVR(SVRConfig(alpha=0.1)), x, y, folds=4, seed=0
        )
        assert 0.0 < mse < float(np.var(y))
