"""RC net builders: edge, star, and shared-route topologies."""

import pytest

from repro.geometry import Point
from repro.route.rc_net import (
    EdgeRCCache,
    edge_rc_tree,
    route_rc_tree,
    star_rc_tree,
)
from repro.route.rsmt import rsmt
from repro.sta.d2m import d2m_delays
from repro.sta.elmore import elmore_delay_to, elmore_delays
from repro.tech.corners import TABLE3_CORNERS
from repro.tech.derating import DerateModel
from repro.tech.wire import WireModel


@pytest.fixture(scope="module")
def wire():
    return WireModel.for_corner(
        TABLE3_CORNERS["c0"], DerateModel(reference=TABLE3_CORNERS["c0"])
    )


class TestEdgeRC:
    def test_total_cap_matches_wire_plus_load(self, wire):
        length = 100.0
        tree = edge_rc_tree([Point(0, 0), Point(length, 0)], wire, load_ff=5.0)
        assert tree.total_cap_ff() == pytest.approx(
            wire.segment_cap(length) + 5.0
        )

    def test_elmore_matches_distributed_formula(self, wire):
        """Fine discretization converges to rL(cL/2 + load)."""
        length, load = 200.0, 4.0
        tree = edge_rc_tree(
            [Point(0, 0), Point(length, 0)], wire, load, segment_um=1.0
        )
        expected = wire.segment_res(length) * (
            wire.segment_cap(length) / 2.0 + load
        )
        assert elmore_delay_to(tree, "sink") == pytest.approx(expected, rel=1e-3)

    def test_discretization_insensitivity_of_elmore(self, wire):
        """Elmore of the pi-chain is exact for any segment count."""
        poly = [Point(0, 0), Point(130, 0)]
        coarse = elmore_delay_to(edge_rc_tree(poly, wire, 3.0, segment_um=130.0), "sink")
        fine = elmore_delay_to(edge_rc_tree(poly, wire, 3.0, segment_um=5.0), "sink")
        assert coarse == pytest.approx(fine, rel=1e-9)

    def test_zero_length_edge(self, wire):
        tree = edge_rc_tree([Point(0, 0), Point(0, 0)], wire, load_ff=2.0)
        assert elmore_delay_to(tree, "sink") == 0.0
        assert tree.total_cap_ff() == pytest.approx(2.0)

    def test_detoured_polyline_counts_full_length(self, wire):
        direct = edge_rc_tree([Point(0, 0), Point(100, 0)], wire, 1.0)
        detour = edge_rc_tree(
            [Point(0, 0), Point(0, 30), Point(100, 30), Point(100, 0)], wire, 1.0
        )
        assert detour.total_cap_ff() > direct.total_cap_ff()
        assert elmore_delay_to(detour, "sink") > elmore_delay_to(direct, "sink")


class TestStarRC:
    def test_branches_independent(self, wire):
        """In a star, one branch's delay ignores sibling branches."""
        single = star_rc_tree(
            [("a", [Point(0, 0), Point(100, 0)], 2.0)], wire
        )
        double = star_rc_tree(
            [
                ("a", [Point(0, 0), Point(100, 0)], 2.0),
                ("b", [Point(0, 0), Point(0, 300)], 8.0),
            ],
            wire,
        )
        assert elmore_delays(double)["a"] == pytest.approx(
            elmore_delays(single)["a"]
        )

    def test_total_cap_sums_branches(self, wire):
        tree = star_rc_tree(
            [
                ("a", [Point(0, 0), Point(50, 0)], 1.0),
                ("b", [Point(0, 0), Point(0, 70)], 2.0),
            ],
            wire,
        )
        assert tree.total_cap_ff() == pytest.approx(
            wire.segment_cap(120.0) + 3.0
        )

    def test_d2m_bounded_by_elmore(self, wire):
        tree = star_rc_tree(
            [
                ("a", [Point(0, 0), Point(150, 0)], 1.5),
                ("b", [Point(0, 0), Point(0, 220)], 3.0),
            ],
            wire,
        )
        elmore = elmore_delays(tree)
        d2m = d2m_delays(tree)
        for name in ("a", "b"):
            assert 0.0 < d2m[name] <= elmore[name]


class TestRouteRC:
    def test_pin_delays_readable_by_index(self, wire):
        pts = [Point(0, 0), Point(100, 0), Point(50, 80)]
        route = rsmt(pts)
        rc = route_rc_tree(route, 0, {1: 2.0, 2: 2.0}, wire)
        delays = elmore_delays(rc)
        assert delays[1] > 0.0 and delays[2] > 0.0

    def test_invalid_root_rejected(self, wire):
        route = rsmt([Point(0, 0), Point(10, 0)])
        with pytest.raises(ValueError):
            route_rc_tree(route, 99, {}, wire)

    def test_shared_trunk_cheaper_than_star_far_cap(self, wire):
        """Two co-located far pins: shared routing halves the wire cap."""
        pts = [Point(0, 0), Point(200, 1), Point(200, -1)]
        route = rsmt(pts)
        shared = route_rc_tree(route, 0, {1: 1.0, 2: 1.0}, wire)
        star = star_rc_tree(
            [
                (1, [Point(0, 0), Point(200, 1)], 1.0),
                (2, [Point(0, 0), Point(200, -1)], 1.0),
            ],
            wire,
        )
        assert shared.total_cap_ff() < star.total_cap_ff() * 0.62


class TestEdgeRCCache:
    def test_hit_and_miss_counters(self, wire):
        cache = EdgeRCCache()
        first = cache.metrics(wire, 120.0, 2.0)
        again = cache.metrics(wire, 120.0, 2.0)
        assert first == again
        assert cache.misses == 1 and cache.hits == 1
        assert cache.metrics(wire, 120.0, 2.0) == first
        assert cache.hits == 2 and len(cache) == 1

    def test_eviction_is_lru_and_counted(self, wire):
        cache = EdgeRCCache(max_entries=4)
        lengths = [10.0, 20.0, 30.0, 40.0]
        for length in lengths:
            cache.metrics(wire, length, 1.0)
        assert len(cache) == 4 and cache.evictions == 0
        # Touch the oldest entry: the hit must move it to the
        # most-recent end, out of the half the next insert drops.
        cache.metrics(wire, 10.0, 1.0)
        cache.metrics(wire, 50.0, 1.0)
        assert cache.evictions == 2
        misses_before = cache.misses
        cache.metrics(wire, 10.0, 1.0)  # survived eviction
        assert cache.misses == misses_before
        cache.metrics(wire, 20.0, 1.0)  # evicted, recomputed
        assert cache.misses == misses_before + 1

    def test_eviction_never_changes_values(self, wire):
        cache = EdgeRCCache(max_entries=2)
        fresh = EdgeRCCache()
        for length in (11.0, 22.0, 33.0, 11.0, 22.0):
            assert cache.metrics(wire, length, 1.5) == fresh.metrics(
                wire, length, 1.5
            )
        assert cache.evictions > 0
