"""Arc extraction and latency additivity."""

import pytest

from repro.geometry import Point
from repro.netlist.arcs import arc_membership, arcs_on_path, extract_arcs, path_arc_indices
from repro.netlist.tree import ClockTree


def chain_tree():
    """source -> r1 -> r2 -> branch -> {leaf_a -> s1, s2 ; s3}."""
    t = ClockTree()
    src = t.add_source(Point(0, 0))
    r1 = t.add_buffer(src, Point(50, 0), 16)
    r2 = t.add_buffer(r1, Point(100, 0), 16)
    branch = t.add_buffer(r2, Point(150, 0), 16)
    leaf_a = t.add_buffer(branch, Point(200, 40), 8)
    s1 = t.add_sink(leaf_a, Point(230, 50))
    s2 = t.add_sink(leaf_a, Point(230, 30))
    s3 = t.add_sink(branch, Point(200, -40))
    return t, dict(
        src=src, r1=r1, r2=r2, branch=branch, leaf_a=leaf_a, s1=s1, s2=s2, s3=s3
    )


class TestExtraction:
    def test_arc_count(self):
        t, n = chain_tree()
        arcs = extract_arcs(t)
        # src->branch (through r1, r2), branch->leaf_a, leaf_a->s1,
        # leaf_a->s2, branch->s3.
        assert len(arcs) == 5

    def test_interior_buffers_collected(self):
        t, n = chain_tree()
        arcs = extract_arcs(t)
        long_arc = next(a for a in arcs if a.start == n["src"])
        assert long_arc.end == n["branch"]
        assert long_arc.interior == (n["r1"], n["r2"])
        assert long_arc.node_count == 2

    def test_edges_in_order(self):
        t, n = chain_tree()
        arcs = extract_arcs(t)
        long_arc = next(a for a in arcs if a.start == n["src"])
        assert long_arc.edges == (n["r1"], n["r2"], n["branch"])

    def test_sinks_are_arc_ends(self):
        t, n = chain_tree()
        arcs = extract_arcs(t)
        ends = {a.end for a in arcs}
        assert {n["s1"], n["s2"], n["s3"]} <= ends

    def test_indices_sequential(self):
        t, _ = chain_tree()
        arcs = extract_arcs(t)
        assert [a.index for a in arcs] == list(range(len(arcs)))


class TestPaths:
    def test_arcs_on_path_telescopes(self):
        t, n = chain_tree()
        arcs = extract_arcs(t)
        path = arcs_on_path(t, arcs, n["s1"])
        assert path[0].start == n["src"]
        assert path[-1].end == n["s1"]
        for prev, nxt in zip(path, path[1:]):
            assert prev.end == nxt.start

    def test_path_arc_indices_consistent(self):
        t, n = chain_tree()
        arcs = extract_arcs(t)
        table = path_arc_indices(t, arcs, t.sinks())
        path = arcs_on_path(t, arcs, n["s2"])
        assert table[n["s2"]] == tuple(a.index for a in path)

    def test_membership(self):
        t, n = chain_tree()
        arcs = extract_arcs(t)
        owner = arc_membership(arcs)
        assert owner[n["r1"]] == owner[n["r2"]]
        assert n["branch"] not in owner  # anchors own no arc interior

    def test_stale_arcs_detected(self):
        t, n = chain_tree()
        arcs = extract_arcs(t)
        t.insert_buffer_on_edge(n["s3"], Point(175, -20), 8)
        # s3's path now passes a node that is not an arc endpoint; using
        # stale arcs must fail loudly, not silently misattribute.
        fresh = extract_arcs(t)
        assert len(fresh) == len(arcs)  # inserted buffer is interior
        # The stale list still resolves (anchors unchanged) — that is the
        # designed tolerance; verify the fresh list matches anchors.
        assert {(a.start, a.end) for a in fresh} == {
            (a.start, a.end) for a in arcs
        }


class TestLatencyAdditivity:
    def test_arc_delays_sum_to_latency(self, library_cls1, timer):
        t, n = chain_tree()
        arcs = extract_arcs(t)
        for corner in library_cls1.corners:
            timing = timer.analyze_corner(t, corner)
            delays = timer.arc_delays(t, arcs, timing)
            for sink in t.sinks():
                path = arcs_on_path(t, arcs, sink)
                total = sum(delays[a.index] for a in path)
                assert total == pytest.approx(timing.arrival[sink], abs=1e-6)
