"""The global LP (Equations (4)-(11))."""

import numpy as np
import pytest

from repro.core.lp import (
    GlobalSkewLP,
    build_model_data,
    sweep_upper_bound,
)
from repro.tech.ratio_bounds import fit_all_ratio_bounds


@pytest.fixture(scope="module")
def ratio_bounds(library_cls1):
    return fit_all_ratio_bounds(library_cls1)


@pytest.fixture(scope="module")
def model_data(mini_design, mini_problem, stage_luts):
    return build_model_data(
        mini_design.tree,
        mini_problem.timer,
        mini_design.pairs,
        mini_problem.alphas,
        stage_luts,
    )


@pytest.fixture(scope="module")
def lp(model_data, ratio_bounds):
    return GlobalSkewLP(model_data, ratio_bounds)


class TestModelData:
    def test_shapes(self, model_data, mini_design):
        n_arcs = len(model_data.arcs)
        n_corners = len(model_data.corner_names)
        assert model_data.arc_delay.shape == (n_arcs, n_corners)
        assert model_data.arc_dmin.shape == (n_arcs, n_corners)
        assert len(model_data.pair_coeffs) == len(mini_design.pairs)

    def test_arc_delays_positive(self, model_data):
        assert np.all(model_data.arc_delay > 0.0)

    def test_dmin_not_above_measured(self, model_data):
        """The minimal-buffering bound must leave room below (mostly).

        Allow a small fraction of exceptions: very short arcs can already
        be at their floor.
        """
        frac = np.mean(model_data.arc_dmin <= model_data.arc_delay + 1e-6)
        assert frac > 0.6

    def test_pair_coeffs_cancel_common_path(self, model_data, mini_design):
        """Shared arcs between launch and capture paths must cancel."""
        for coeff in model_data.pair_coeffs:
            assert all(c in (1.0, -1.0) for c in coeff.values())

    def test_pair_skew_consistency(self, model_data, mini_problem):
        """Baseline pair skews match latency differences."""
        for p, pair in enumerate(model_data.pairs):
            for k, name in enumerate(model_data.corner_names):
                lat = model_data.sink_latency0[name]
                expected = lat[pair[0]] - lat[pair[1]]
                assert model_data.pair_skew0[p, k] == pytest.approx(expected)


class TestLP:
    def test_variation_minimization_feasible(self, lp):
        sol = lp.minimize_variation()
        assert sol.feasible

    def test_lp_bound_improves_on_baseline(self, lp, mini_problem):
        sol = lp.minimize_variation()
        assert sol.achieved_variation_bound < mini_problem.baseline.total_variation

    def test_deltas_respect_eq10_bounds(self, lp, model_data):
        sol = lp.minimize_variation()
        beta = 1.2
        new_delay = model_data.arc_delay + sol.delta
        assert np.all(new_delay <= beta * model_data.arc_delay + 1e-6)
        # Below: only where the arc was optimizable at all.
        frozen = ~lp._optimizable
        assert np.all(np.abs(sol.delta[frozen]) < 1e-9)

    def test_minimize_changes_respects_bound(self, lp):
        base = lp.minimize_variation()
        target = base.achieved_variation_bound * 1.2 + 1.0
        sol = lp.minimize_changes(target)
        assert sol.feasible
        assert sol.achieved_variation_bound <= target + 1e-6

    def test_looser_bound_needs_fewer_changes(self, lp):
        base = lp.minimize_variation()
        tight = lp.minimize_changes(base.achieved_variation_bound * 1.02)
        loose = lp.minimize_changes(base.achieved_variation_bound * 1.5)
        assert loose.objective_abs_delta <= tight.objective_abs_delta + 1e-6

    def test_sweep_returns_sorted_bounds(self, lp):
        sols = sweep_upper_bound(lp, (1.0, 1.1, 1.3))
        assert len(sols) == 3
        bounds = [u for u, _ in sols]
        assert bounds == sorted(bounds)

    def test_nonzero_arcs_threshold(self, lp):
        sol = lp.minimize_variation()
        few = sol.nonzero_arcs(threshold_ps=50.0)
        many = sol.nonzero_arcs(threshold_ps=0.1)
        assert set(few) <= set(many)

    def test_some_arcs_frozen_some_free(self, lp, model_data):
        """Mini has both buffered arcs (on-manifold) and wire stubs."""
        assert 0 < lp.optimizable_arc_count < len(model_data.arcs)
