"""Unit coverage for :mod:`repro.core.instrument`.

The merge-collision regression: ``merge_stats`` used to silently
overwrite a non-numeric leaf when the incoming value had a different
kind (a worker's note string landing on an int counter, a dict landing
on a scalar).  Collisions are now explicit ``{"__collision__": [...]}``
nodes that keep every conflicting value.
"""

import pytest

from repro.core.instrument import (
    COLLISION_KEY,
    StageTimers,
    diff_stats,
    merge_stats,
)


class TestMergeStats:
    def test_numbers_add(self):
        dst = {"a": 1, "b": 2.5}
        merge_stats(dst, {"a": 2, "b": 0.5})
        assert dst == {"a": 3, "b": 3.0}

    def test_dicts_merge_recursively(self):
        dst = {"outer": {"x": 1, "inner": {"y": 2}}}
        merge_stats(dst, {"outer": {"x": 4, "inner": {"y": 5, "z": 6}}})
        assert dst == {"outer": {"x": 5, "inner": {"y": 7, "z": 6}}}

    def test_missing_keys_deep_copied(self):
        src = {"nested": {"count": 1}}
        dst = {}
        merge_stats(dst, src)
        dst["nested"]["count"] += 10
        assert src["nested"]["count"] == 1  # src must not alias dst

    def test_same_kind_non_numeric_src_wins(self):
        dst = {"backend": "reference", "flag": True}
        merge_stats(dst, {"backend": "kernel", "flag": False})
        assert dst["backend"] == "kernel"
        assert dst["flag"] is False

    def test_kind_mismatch_becomes_explicit_collision(self):
        # Regression: a string landing on a number used to silently
        # replace it; both values must survive.
        dst = {"note": 3}
        merge_stats(dst, {"note": "pool degraded to serial"})
        assert dst["note"] == {COLLISION_KEY: [3, "pool degraded to serial"]}

    def test_dict_vs_scalar_collision(self):
        dst = {"workers": {"effective": 4}}
        merge_stats(dst, {"workers": 4})
        assert dst["workers"] == {COLLISION_KEY: [{"effective": 4}, 4]}

    def test_scalar_vs_dict_collision(self):
        dst = {"workers": 4}
        merge_stats(dst, {"workers": {"effective": 4}})
        assert dst["workers"] == {COLLISION_KEY: [4, {"effective": 4}]}

    def test_collision_node_appends_on_later_merges(self):
        dst = {"note": 3}
        merge_stats(dst, {"note": "first"})
        merge_stats(dst, {"note": "second"})
        merge_stats(dst, {"note": {"nested": 1}})
        assert dst["note"] == {
            COLLISION_KEY: [3, "first", "second", {"nested": 1}]
        }

    def test_bool_is_not_a_number(self):
        # booleans are int subclasses; they must not be summed.
        dst = {"flag": True}
        merge_stats(dst, {"flag": True})
        assert dst["flag"] is True

    def test_returns_dst_for_chaining(self):
        dst = {}
        assert merge_stats(dst, {"a": 1}) is dst


class TestDiffStats:
    def test_flat_numeric_delta(self):
        assert diff_stats({"a": 5, "b": 2.5}, {"a": 3, "b": 1.0}) == {
            "a": 2,
            "b": 1.5,
        }

    def test_nested_delta(self):
        new = {"counters": {"built": 10, "hits": 4}, "timers": {"s": 2.0}}
        old = {"counters": {"built": 7, "hits": 1}, "timers": {"s": 0.5}}
        assert diff_stats(new, old) == {
            "counters": {"built": 3, "hits": 3},
            "timers": {"s": 1.5},
        }

    def test_missing_old_keys_count_from_zero(self):
        assert diff_stats({"a": 5, "deep": {"b": 2}}, {}) == {
            "a": 5,
            "deep": {"b": 2},
        }

    def test_non_numeric_keeps_new_value(self):
        assert diff_stats({"backend": "kernel"}, {"backend": "reference"}) == {
            "backend": "kernel"
        }

    def test_old_scalar_under_new_mapping(self):
        # A kind change between snapshots: the new mapping diffs against
        # an empty old mapping rather than crashing.
        assert diff_stats({"x": {"n": 3}}, {"x": 7}) == {"x": {"n": 3}}


class TestStageTimers:
    def test_accumulates_seconds_and_counts(self):
        timers = StageTimers()
        for _ in range(3):
            with timers.stage("work"):
                pass
        assert timers.counts["work"] == 3
        assert timers.seconds["work"] >= 0.0

    def test_add_merges(self):
        a = StageTimers()
        b = StageTimers()
        with a.stage("x"):
            pass
        with b.stage("x"):
            pass
        with b.stage("y"):
            pass
        a.add(b)
        assert a.counts == {"x": 2, "y": 1}

    def test_as_dict_shape(self):
        timers = StageTimers(phase="local")
        with timers.stage("s"):
            pass
        payload = timers.as_dict()
        assert set(payload) == {"seconds", "counts"}
        assert payload["counts"] == {"s": 1}

    def test_stage_mirrors_span_to_active_tracer(self):
        from repro.obs.trace import Tracer, tracing

        with tracing(Tracer()) as tracer:
            timers = StageTimers(phase="demo")
            with timers.stage("featurize"):
                pass
        starts = [e for e in tracer.events if e["type"] == "span_start"]
        assert [e["name"] for e in starts] == ["featurize"]
        assert starts[0]["phase"] == "demo"

    def test_exception_still_recorded(self):
        timers = StageTimers()
        with pytest.raises(RuntimeError):
            with timers.stage("boom"):
                raise RuntimeError("boom")
        assert timers.counts["boom"] == 1
