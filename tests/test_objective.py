"""The Skew Variation Reduction Problem wrapper."""

import pytest



class TestProblem:
    def test_baseline_frozen(self, mini_problem):
        assert mini_problem.baseline.total_variation > 0.0
        assert mini_problem.alphas["c0"] == 1.0

    def test_evaluate_identity(self, mini_problem, mini_design):
        again = mini_problem.evaluate(mini_design.tree)
        assert again.total_variation == pytest.approx(
            mini_problem.baseline.total_variation
        )

    def test_objective_shortcut(self, mini_problem, mini_design):
        assert mini_problem.objective(mini_design.tree) == pytest.approx(
            mini_problem.baseline.total_variation
        )

    def test_evaluate_uses_baseline_alphas(self, mini_problem, mini_design):
        """A modified tree is measured on the baseline's scale."""
        tree = mini_design.tree.clone()
        buf = tree.buffers()[0]
        tree.resize_buffer(buf, 32)
        result = mini_problem.evaluate(tree)
        assert result.skews.alphas == mini_problem.alphas

    def test_reduction_percent(self, mini_problem):
        base = mini_problem.baseline
        assert mini_problem.reduction_percent(base) == pytest.approx(0.0)

    def test_accepts_baseline(self, mini_problem):
        assert mini_problem.accepts(mini_problem.baseline)

    def test_rejects_degraded_local_skew(self, mini_problem, mini_design):
        """Detouring one sink's edge hard degrades local skew -> reject."""
        tree = mini_design.tree.clone()
        sink = tree.sinks()[0]
        from repro.eco.router import reroute_edge

        reroute_edge(
            tree, sink, tree.edge_length(sink) + 800.0, mini_design.region
        )
        result = mini_problem.evaluate(tree)
        assert not mini_problem.accepts(result)
