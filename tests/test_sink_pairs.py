"""Datapath pairs and critical-pair selection."""

import pytest

from repro.netlist.sink_pairs import (
    DatapathPair,
    pairs_touching,
    select_critical_pairs,
)


def make_pair(launch, capture, setup, hold):
    return DatapathPair(
        launch=launch,
        capture=capture,
        setup_slack={"c0": setup},
        hold_slack={"c0": hold},
    )


class TestCriticality:
    def test_lower_slack_is_more_critical(self):
        tight = make_pair(1, 2, 10.0, 500.0)
        loose = make_pair(3, 4, 300.0, 500.0)
        assert tight.criticality("c0") > loose.criticality("c0")

    def test_hold_counts_too(self):
        hold_tight = make_pair(1, 2, 500.0, 5.0)
        assert hold_tight.criticality("c0") == pytest.approx(-5.0)

    def test_missing_corner_is_uncritical(self):
        pair = make_pair(1, 2, 10.0, 10.0)
        assert pair.criticality("c9") == -float("inf")


class TestSelection:
    def test_top_k_per_corner(self):
        pairs = [make_pair(i, i + 100, float(i), 500.0) for i in range(10)]
        selected = select_critical_pairs(pairs, ["c0"], top_k=3)
        assert selected == [(0, 100), (1, 101), (2, 102)]

    def test_union_over_corners(self):
        a = DatapathPair(1, 2, {"c0": 1.0, "c1": 900.0}, {})
        b = DatapathPair(3, 4, {"c0": 900.0, "c1": 1.0}, {})
        selected = select_critical_pairs([a, b], ["c0", "c1"], top_k=1)
        assert selected == [(1, 2), (3, 4)]

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            select_critical_pairs([], ["c0"], top_k=0)

    def test_deterministic_order(self):
        pairs = [make_pair(i, 50 - i, 5.0, 500.0) for i in range(5)]
        first = select_critical_pairs(pairs, ["c0"], top_k=5)
        second = select_critical_pairs(list(reversed(pairs)), ["c0"], top_k=5)
        assert first == second


class TestPairsTouching:
    def test_filters_by_endpoint(self):
        pairs = [(1, 2), (3, 4), (2, 5)]
        assert pairs_touching(pairs, {2}) == [(1, 2), (2, 5)]

    def test_empty_sinks(self):
        assert pairs_touching([(1, 2)], set()) == []
