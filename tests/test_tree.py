"""ClockTree topology, geometry, and mutation operators."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Point
from repro.netlist.tree import ClockTree, NodeKind


def small_tree():
    """source -> b1 -> {b2 -> [s1, s2], b3 -> s3}."""
    t = ClockTree()
    src = t.add_source(Point(0, 0))
    b1 = t.add_buffer(src, Point(100, 0), 16)
    b2 = t.add_buffer(b1, Point(200, 50), 8)
    b3 = t.add_buffer(b1, Point(200, -50), 8)
    s1 = t.add_sink(b2, Point(260, 60))
    s2 = t.add_sink(b2, Point(240, 40))
    s3 = t.add_sink(b3, Point(260, -60))
    return t, dict(src=src, b1=b1, b2=b2, b3=b3, s1=s1, s2=s2, s3=s3)


class TestConstruction:
    def test_single_source_enforced(self):
        t = ClockTree()
        t.add_source(Point(0, 0))
        with pytest.raises(ValueError):
            t.add_source(Point(1, 1))

    def test_root_requires_source(self):
        with pytest.raises(ValueError):
            ClockTree().root

    def test_cannot_drive_from_sink(self):
        t, n = small_tree()
        with pytest.raises(ValueError):
            t.add_buffer(n["s1"], Point(0, 0), 8)
        with pytest.raises(ValueError):
            t.add_sink(n["s1"], Point(0, 0))

    def test_kinds(self):
        t, n = small_tree()
        assert t.node(n["src"]).kind is NodeKind.SOURCE
        assert t.node(n["b1"]).is_buffer
        assert t.node(n["s1"]).is_sink

    def test_counts(self):
        t, _ = small_tree()
        assert len(t.sinks()) == 3
        assert len(t.buffers()) == 3
        assert len(t) == 7

    def test_validate_ok(self):
        t, _ = small_tree()
        t.validate()


class TestQueries:
    def test_path_to_root(self):
        t, n = small_tree()
        assert t.path_to_root(n["s1"]) == [n["s1"], n["b2"], n["b1"], n["src"]]

    def test_buffer_level(self):
        t, n = small_tree()
        assert t.buffer_level(n["b1"]) == 1
        assert t.buffer_level(n["b2"]) == 2
        assert t.buffer_level(n["s1"]) == 2

    def test_subtree_sinks(self):
        t, n = small_tree()
        assert set(t.subtree_sinks(n["b2"])) == {n["s1"], n["s2"]}
        assert set(t.subtree_sinks(n["b1"])) == {n["s1"], n["s2"], n["s3"]}

    def test_drivers_excludes_sinks_and_leafless(self):
        t, n = small_tree()
        drivers = set(t.drivers())
        assert n["src"] in drivers
        assert n["s1"] not in drivers

    def test_topological_root_first(self):
        t, n = small_tree()
        order = t.topological_order()
        assert order[0] == n["src"]
        assert order.index(n["b1"]) < order.index(n["b2"])


class TestGeometry:
    def test_edge_length_direct(self):
        t, n = small_tree()
        assert t.edge_length(n["b1"]) == 100.0

    def test_edge_via_detour(self):
        t, n = small_tree()
        t.set_edge_via(n["b1"], [Point(50, 30), Point(80, 30)])
        assert t.edge_length(n["b1"]) == pytest.approx(50 + 30 + 30 + 30 + 20)

    def test_clear_edge_via(self):
        t, n = small_tree()
        t.set_edge_via(n["b1"], [Point(50, 30)])
        t.clear_edge_via(n["b1"])
        assert t.edge_length(n["b1"]) == 100.0

    def test_root_has_no_incoming_edge(self):
        t, n = small_tree()
        with pytest.raises(ValueError):
            t.edge_polyline(n["src"])

    def test_total_wirelength_sums_edges(self):
        t, _ = small_tree()
        total = sum(
            t.edge_length(nid)
            for nid in t.node_ids()
            if t.parent(nid) is not None
        )
        assert t.total_wirelength() == pytest.approx(total)


class TestMutations:
    def test_move_buffer(self):
        t, n = small_tree()
        t.move_node(n["b2"], Point(210, 55))
        assert t.node(n["b2"]).location == Point(210, 55)

    def test_move_sink_rejected(self):
        t, n = small_tree()
        with pytest.raises(ValueError):
            t.move_node(n["s1"], Point(0, 0))

    def test_resize(self):
        t, n = small_tree()
        t.resize_buffer(n["b2"], 16)
        assert t.node(n["b2"]).size == 16

    def test_reassign_parent(self):
        t, n = small_tree()
        t.reassign_parent(n["s3"], n["b2"])
        assert t.parent(n["s3"]) == n["b2"]
        assert n["s3"] not in t.children(n["b3"])
        t.validate()

    def test_reassign_cycle_rejected(self):
        t, n = small_tree()
        with pytest.raises(ValueError):
            t.reassign_parent(n["b1"], n["b2"])

    def test_reassign_source_rejected(self):
        t, n = small_tree()
        with pytest.raises(ValueError):
            t.reassign_parent(n["src"], n["b1"])

    def test_insert_buffer_on_edge(self):
        t, n = small_tree()
        mid = t.insert_buffer_on_edge(n["b2"], Point(150, 25), 8)
        assert t.parent(n["b2"]) == mid
        assert t.parent(mid) == n["b1"]
        assert t.children(mid) == (n["b2"],)
        t.validate()

    def test_remove_buffer_splices_children(self):
        t, n = small_tree()
        t.remove_buffer(n["b2"])
        assert t.parent(n["s1"]) == n["b1"]
        assert t.parent(n["s2"]) == n["b1"]
        assert n["b2"] not in t
        t.validate()

    def test_remove_nonbuffer_rejected(self):
        t, n = small_tree()
        with pytest.raises(ValueError):
            t.remove_buffer(n["s1"])

    def test_clone_independent(self):
        t, n = small_tree()
        c = t.clone()
        c.move_node(n["b2"], Point(0, 99))
        assert t.node(n["b2"]).location != Point(0, 99)
        c.remove_buffer(n["b3"])
        assert n["b3"] in t
        t.validate()
        c.validate()

    def test_clone_preserves_ids_and_vias(self):
        t, n = small_tree()
        t.set_edge_via(n["b1"], [Point(50, 10)])
        c = t.clone()
        assert c.node(n["b1"]).via == (Point(50, 10),)


@given(st.integers(0, 200), st.lists(st.integers(0, 5), max_size=12))
@settings(max_examples=30, deadline=None)
def test_random_surgery_keeps_tree_valid(seed, ops):
    """Random reassign/remove/insert sequences never corrupt the tree."""
    import numpy as np

    rng = np.random.default_rng(seed)
    t, n = small_tree()
    for op in ops:
        buffers = t.buffers()
        if not buffers:
            break
        nid = int(rng.choice(buffers))
        if op <= 1:
            # reassign a node under a random other driver if legal
            drivers = [d for d in t.drivers() if d not in t.subtree_ids(nid)]
            if drivers and t.parent(nid) is not None:
                t.reassign_parent(nid, int(rng.choice(drivers)))
        elif op == 2 and len(buffers) > 1:
            t.remove_buffer(nid)
        elif op >= 3:
            kids = t.children(nid)
            if kids:
                t.insert_buffer_on_edge(
                    int(rng.choice(kids)), Point(float(rng.uniform(0, 300)), 0.0), 8
                )
    t.validate()
    assert len(t.sinks()) == 3  # sinks are never lost
