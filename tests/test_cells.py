"""NLDM tables and inverter cell characterization."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tech.cells import (
    DEFAULT_LOAD_AXIS,
    DEFAULT_SLEW_AXIS,
    NLDMTable,
    characterize_inverter,
)


def simple_table():
    return NLDMTable(
        slew_axis=(10.0, 20.0),
        load_axis=(1.0, 3.0),
        values=((1.0, 3.0), (2.0, 4.0)),
    )


class TestNLDMTable:
    def test_exact_grid_lookup(self):
        table = simple_table()
        assert table.lookup(10.0, 1.0) == 1.0
        assert table.lookup(20.0, 3.0) == 4.0

    def test_bilinear_center(self):
        table = simple_table()
        assert table.lookup(15.0, 2.0) == pytest.approx(2.5)

    def test_clamping_outside_grid(self):
        table = simple_table()
        assert table.lookup(0.0, 0.0) == 1.0
        assert table.lookup(100.0, 100.0) == 4.0

    def test_misshapen_values_rejected(self):
        with pytest.raises(ValueError):
            NLDMTable((1.0, 2.0), (1.0,), ((1.0, 2.0),))

    def test_non_monotone_axis_rejected(self):
        with pytest.raises(ValueError):
            NLDMTable((2.0, 1.0), (1.0, 2.0), ((1.0, 2.0), (3.0, 4.0)))

    @given(
        st.floats(5.0, 200.0, allow_nan=False),
        st.floats(0.5, 200.0, allow_nan=False),
    )
    @settings(max_examples=60)
    def test_lookup_within_table_range(self, slew, load):
        table = simple_table()
        value = table.lookup(slew, load)
        assert 1.0 - 1e-9 <= value <= 4.0 + 1e-9


class TestCharacterizeInverter:
    @pytest.fixture(scope="class")
    def inv8(self):
        return characterize_inverter(8, gate_factor=1.0)

    def test_name_and_size(self, inv8):
        assert inv8.name == "INVX8"
        assert inv8.size == 8

    def test_delay_monotone_in_load(self, inv8):
        d_small = inv8.delay(20.0, 2.0)
        d_large = inv8.delay(20.0, 64.0)
        assert d_large > d_small

    def test_delay_monotone_in_slew(self, inv8):
        assert inv8.delay(80.0, 8.0) > inv8.delay(10.0, 8.0)

    def test_larger_cell_is_faster_at_fixed_load(self):
        small = characterize_inverter(2, 1.0)
        large = characterize_inverter(32, 1.0)
        assert large.delay(20.0, 32.0) < small.delay(20.0, 32.0)

    def test_larger_cell_costs_cap_and_area(self):
        small = characterize_inverter(2, 1.0)
        large = characterize_inverter(32, 1.0)
        assert large.input_cap_ff > small.input_cap_ff
        assert large.area_um2 > small.area_um2

    def test_gate_factor_scales_delay(self):
        nominal = characterize_inverter(8, 1.0)
        slow = characterize_inverter(8, 1.7)
        ratio = slow.delay(20.0, 8.0) / nominal.delay(20.0, 8.0)
        assert ratio == pytest.approx(1.7, rel=1e-6)

    def test_drive_resistance_positive_and_ordered(self):
        r2 = characterize_inverter(2, 1.0).drive_resistance_kohm()
        r32 = characterize_inverter(32, 1.0).drive_resistance_kohm()
        assert 0.0 < r32 < r2

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            characterize_inverter(0, 1.0)

    def test_output_slew_positive(self, inv8):
        for slew in DEFAULT_SLEW_AXIS:
            for load in DEFAULT_LOAD_AXIS:
                assert inv8.output_slew(slew, load) > 0.0
