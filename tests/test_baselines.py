"""Worst-skew LP baseline (Lung et al. style objective)."""

import numpy as np
import pytest

from repro.core.baselines import WorstSkewLP, worst_normalized_skew
from repro.core.lp import build_model_data
from repro.tech.ratio_bounds import fit_all_ratio_bounds


@pytest.fixture(scope="module")
def worst_lp(mini_design, mini_problem, stage_luts):
    ratio_bounds = fit_all_ratio_bounds(mini_design.library)
    data = build_model_data(
        mini_design.tree,
        mini_problem.timer,
        mini_design.pairs,
        mini_problem.alphas,
        stage_luts,
    )
    return WorstSkewLP(data, ratio_bounds), data


class TestWorstSkewLP:
    def test_feasible(self, worst_lp):
        lp, _ = worst_lp
        sol = lp.minimize_worst_skew()
        assert sol.feasible

    def test_worst_bound_not_above_measured(self, worst_lp, mini_problem):
        lp, data = worst_lp
        sol = lp.minimize_worst_skew()
        measured = worst_normalized_skew(
            mini_problem.baseline.latencies,
            data.pairs,
            mini_problem.alphas,
        )
        assert sol.achieved_variation_bound <= measured + 1e-6

    def test_frozen_arcs_untouched(self, worst_lp):
        lp, _ = worst_lp
        sol = lp.minimize_worst_skew()
        frozen = ~lp._optimizable
        assert np.all(np.abs(sol.delta[frozen]) < 1e-9)

    def test_deltas_within_beta_window(self, worst_lp):
        lp, data = worst_lp
        sol = lp.minimize_worst_skew()
        new_delay = data.arc_delay + sol.delta
        assert np.all(new_delay <= 1.2 * data.arc_delay + 1e-6)


class TestMeasuredWorst:
    def test_worst_skew_formula(self):
        latencies = {"c0": {1: 10.0, 2: 25.0}, "c1": {1: 20.0, 2: 30.0}}
        alphas = {"c0": 1.0, "c1": 0.5}
        pairs = [(1, 2)]
        # |1.0 * (10-25)| = 15;  |0.5 * (20-30)| = 5 -> worst 15.
        assert worst_normalized_skew(latencies, pairs, alphas) == pytest.approx(15.0)

    def test_empty_pairs(self):
        assert worst_normalized_skew({"c0": {}}, [], {"c0": 1.0}) == 0.0
