"""Clock-tree serialization round trips."""

import json

import pytest

from repro.geometry import Point
from repro.netlist.serialize import (
    load_tree,
    save_tree,
    tree_from_dict,
    tree_from_json,
    tree_to_dict,
    tree_to_json,
)
from repro.netlist.tree import ClockTree


def build_sample():
    t = ClockTree()
    src = t.add_source(Point(0, 0))
    b1 = t.add_buffer(src, Point(50, 0), 16)
    b2 = t.add_buffer(b1, Point(100, 40), 8)
    t.add_sink(b2, Point(120, 50))
    t.add_sink(b2, Point(130, 30))
    t.set_edge_via(b2, [Point(60, 40)])
    return t


class TestRoundTrip:
    def test_dict_round_trip_preserves_everything(self):
        original = build_sample()
        rebuilt = tree_from_dict(tree_to_dict(original))
        assert rebuilt.node_ids() == original.node_ids()
        for nid in original.node_ids():
            a, b = original.node(nid), rebuilt.node(nid)
            assert (a.kind, a.location, a.size, a.via) == (
                b.kind,
                b.location,
                b.size,
                b.via,
            )
            assert original.parent(nid) == rebuilt.parent(nid)

    def test_round_trip_after_mutations(self):
        """Gappy, out-of-order ids (post-optimization) survive."""
        t = build_sample()
        b_new = t.insert_buffer_on_edge(t.sinks()[0], Point(110, 45), 4)
        t.remove_buffer(t.buffers()[0])  # splice one out -> id gap
        rebuilt = tree_from_dict(tree_to_dict(t))
        assert sorted(rebuilt.node_ids()) == sorted(t.node_ids())
        assert rebuilt.node(b_new).size == 4
        rebuilt.validate()

    def test_json_round_trip(self):
        original = build_sample()
        text = tree_to_json(original)
        json.loads(text)  # valid JSON
        rebuilt = tree_from_json(text)
        assert rebuilt.total_wirelength() == pytest.approx(
            original.total_wirelength()
        )

    def test_file_round_trip(self, tmp_path):
        original = build_sample()
        path = tmp_path / "tree.json"
        save_tree(original, str(path))
        rebuilt = load_tree(str(path))
        assert len(rebuilt) == len(original)

    def test_timing_identical_after_round_trip(self, timer):
        original = build_sample()
        rebuilt = tree_from_json(tree_to_json(original))
        a = timer.latencies(original)
        b = timer.latencies(rebuilt)
        assert a == b


def assert_trees_field_equal(original: ClockTree, rebuilt: ClockTree) -> None:
    """Field-by-field equality over everything a worker replica consumes.

    Exact (bitwise) float comparison on locations and vias: parallel
    verification workers must reproduce the main process's timing bit
    for bit, which starts with bit-identical geometry.
    """
    assert rebuilt.root == original.root
    assert rebuilt.next_id == original.next_id
    assert rebuilt.node_ids() == original.node_ids()
    for nid in original.node_ids():
        a, b = original.node(nid), rebuilt.node(nid)
        assert a.kind == b.kind
        assert (a.location.x, a.location.y) == (b.location.x, b.location.y)
        assert a.size == b.size
        assert tuple((p.x, p.y) for p in a.via) == tuple(
            (p.x, p.y) for p in b.via
        )
        assert original.parent(nid) == rebuilt.parent(nid)
        # Fanout order decides net evaluation order and undo indices.
        assert original.children(nid) == rebuilt.children(nid)


class TestWorkerReplicaContract:
    """Round trips of the real testcases (the parallel-worker path)."""

    @pytest.fixture(scope="class")
    def cls1_design(self):
        from repro.testcases.cls1 import build_cls1

        return build_cls1(1)

    def test_mini_round_trip_all_fields(self, mini_design):
        tree = mini_design.tree
        assert_trees_field_equal(tree, tree_from_dict(tree_to_dict(tree)))

    def test_cls1_round_trip_all_fields(self, cls1_design):
        tree = cls1_design.tree
        assert_trees_field_equal(tree, tree_from_dict(tree_to_dict(tree)))

    def test_mini_timing_bit_identical(self, mini_design):
        from repro.sta.timer import GoldenTimer

        timer = GoldenTimer(mini_design.library)
        rebuilt = tree_from_json(tree_to_json(mini_design.tree))
        assert timer.latencies(mini_design.tree) == timer.latencies(rebuilt)

    def test_cls1_timing_bit_identical(self, cls1_design):
        from repro.sta.timer import GoldenTimer

        timer = GoldenTimer(cls1_design.library)
        rebuilt = tree_from_json(tree_to_json(cls1_design.tree))
        assert timer.latencies(cls1_design.tree) == timer.latencies(rebuilt)

    def test_id_allocation_matches_after_removal(self):
        """Replicas must allocate the same ids the original would.

        Buffer removal leaves a hole in the id space; without the
        serialized ``next_id`` a replica would re-derive ``max(id) + 1``
        and its next insertion would diverge from the original's.
        """
        t = build_sample()
        t.remove_buffer(t.buffers()[-1])  # leaves an id gap at the top
        rebuilt = tree_from_dict(tree_to_dict(t))
        assert rebuilt.next_id == t.next_id
        sink = t.sinks()[0]
        a = t.insert_buffer_on_edge(sink, Point(10, 10), 4)
        b = rebuilt.insert_buffer_on_edge(sink, Point(10, 10), 4)
        assert a == b

    def test_restore_rejects_colliding_next_id(self):
        t = build_sample()
        payload = tree_to_dict(t)
        payload["next_id"] = 1  # collides with existing ids
        with pytest.raises(ValueError):
            tree_from_dict(payload)


class TestValidation:
    def test_bad_schema_rejected(self):
        with pytest.raises(ValueError):
            tree_from_dict({"schema": 99, "nodes": []})

    def test_source_must_come_first(self):
        payload = tree_to_dict(build_sample())
        payload["nodes"] = payload["nodes"][::-1]
        with pytest.raises(ValueError):
            tree_from_dict(payload)

    def test_restore_rejects_duplicate_ids(self):
        from repro.netlist.tree import NodeKind

        entries = [
            (0, NodeKind.SOURCE, Point(0, 0), None, (), None),
            (0, NodeKind.SINK, Point(1, 1), None, (), 0),
        ]
        with pytest.raises(ValueError):
            ClockTree.restore(entries)

    def test_restore_rejects_orphans(self):
        from repro.netlist.tree import NodeKind

        entries = [
            (0, NodeKind.SOURCE, Point(0, 0), None, (), None),
            (2, NodeKind.SINK, Point(1, 1), None, (), 7),
        ]
        with pytest.raises(ValueError):
            ClockTree.restore(entries)
