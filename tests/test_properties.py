"""Cross-cutting property-based tests on core invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rc import RCTree
from repro.sta.d2m import d2m_delays
from repro.sta.elmore import elmore_delays
from repro.sta.skew import normalization_factors, sum_of_skew_variations
from repro.tech.cells import NLDMTable
from repro.tech.corners import default_corners


class TestRCScaleInvariance:
    @given(st.floats(0.1, 10.0), st.lists(
        st.tuples(st.floats(0.05, 2.0), st.floats(0.1, 10.0)), min_size=1, max_size=6
    ))
    @settings(max_examples=40)
    def test_elmore_scales_quadratically_with_rc(self, scale, segments):
        """Scaling all R and C by s scales Elmore by s^2."""
        def build(factor):
            tree = RCTree()
            tree.add_root("n0")
            prev = "n0"
            for i, (res, cap) in enumerate(segments, 1):
                tree.add_node(f"n{i}", prev, res * factor, cap * factor)
                prev = f"n{i}"
            return tree, prev

        base_tree, last = build(1.0)
        scaled_tree, _ = build(scale)
        base = elmore_delays(base_tree)[last]
        scaled = elmore_delays(scaled_tree)[last]
        assert scaled == pytest.approx(base * scale * scale, rel=1e-9)

    @given(st.lists(
        st.tuples(st.floats(0.05, 2.0), st.floats(0.1, 10.0)), min_size=2, max_size=8
    ))
    @settings(max_examples=40)
    def test_d2m_monotone_along_chain(self, segments):
        tree = RCTree()
        tree.add_root("n0")
        prev = "n0"
        names = []
        for i, (res, cap) in enumerate(segments, 1):
            name = f"n{i}"
            tree.add_node(name, prev, res, cap)
            names.append(name)
            prev = name
        d2m = d2m_delays(tree)
        values = [d2m[n] for n in names]
        assert values == sorted(values)


class TestSkewInvariances:
    @given(
        st.lists(st.floats(50.0, 500.0), min_size=4, max_size=8),
        st.floats(1.1, 3.0),
    )
    @settings(max_examples=40)
    def test_objective_invariant_under_common_latency_shift(
        self, latencies, shift_factor
    ):
        """Adding a constant to all latencies at one corner changes no skew."""
        corners = default_corners(("c0", "c1"))
        sinks = list(range(len(latencies)))
        pairs = [(sinks[i], sinks[i + 1]) for i in range(len(sinks) - 1)]
        base = {
            "c0": dict(enumerate(latencies)),
            "c1": {i: v * shift_factor for i, v in enumerate(latencies)},
        }
        shifted = {
            "c0": base["c0"],
            "c1": {i: v + 123.0 for i, v in base["c1"].items()},
        }
        alphas = normalization_factors(base, pairs, corners)
        a = sum_of_skew_variations(base, pairs, corners, alphas)
        b = sum_of_skew_variations(shifted, pairs, corners, alphas)
        assert a == pytest.approx(b, abs=1e-6)

    @given(st.floats(0.5, 2.0), st.floats(0.5, 2.0))
    @settings(max_examples=30)
    def test_objective_scales_linearly_with_all_latencies(self, s1, s2):
        corners = default_corners(("c0", "c1"))
        base = {
            "c0": {0: 100.0, 1: 140.0, 2: 90.0},
            "c1": {0: 210.0, 1: 260.0, 2: 200.0},
        }
        pairs = [(0, 1), (1, 2)]
        alphas = {"c0": 1.0, "c1": 1.0}
        a = sum_of_skew_variations(base, pairs, corners, alphas)
        scaled = {
            name: {k: v * s1 for k, v in lat.items()} for name, lat in base.items()
        }
        b = sum_of_skew_variations(scaled, pairs, corners, alphas)
        assert b == pytest.approx(a * s1, rel=1e-9)


class TestNLDMProperties:
    @given(
        st.floats(1.0, 300.0),
        st.floats(0.1, 300.0),
        st.floats(1.0, 300.0),
        st.floats(0.1, 300.0),
    )
    @settings(max_examples=60)
    def test_monotone_table_lookup_is_monotone(self, s1, c1, s2, c2):
        """Bilinear interpolation preserves a monotone grid's ordering."""
        table = NLDMTable(
            slew_axis=(5.0, 20.0, 80.0),
            load_axis=(1.0, 8.0, 64.0),
            values=(
                (1.0, 2.0, 4.0),
                (1.5, 2.5, 4.5),
                (2.5, 3.5, 5.5),
            ),
        )
        lo = table.lookup(min(s1, s2), min(c1, c2))
        hi = table.lookup(max(s1, s2), max(c1, c2))
        assert lo <= hi + 1e-9
