"""Rectilinear Steiner tree construction."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Point, hpwl
from repro.route.rsmt import ONE_STEINER_MAX_PINS, rectilinear_mst, rsmt

coords = st.floats(0.0, 1000.0, allow_nan=False)
point_lists = st.lists(
    st.builds(Point, coords, coords), min_size=1, max_size=14, unique=True
)


class TestMST:
    def test_two_pins(self):
        tree = rectilinear_mst([Point(0, 0), Point(3, 4)])
        assert tree.length == 7.0
        tree.validate()

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            rectilinear_mst([])

    def test_collinear_chain(self):
        pts = [Point(float(i * 10), 0.0) for i in range(5)]
        tree = rectilinear_mst(pts)
        assert tree.length == 40.0

    @given(point_lists)
    @settings(max_examples=40, deadline=None)
    def test_mst_valid_and_bounded(self, pts):
        tree = rectilinear_mst(pts)
        tree.validate()
        assert tree.length >= hpwl(pts) - 1e-6  # MST >= HPWL lower bound... loose


class TestRSMT:
    def test_l_shape_no_gain(self):
        tree = rsmt([Point(0, 0), Point(10, 10)])
        assert tree.length == 20.0

    def test_steiner_point_saves_wire(self):
        # Classic 4-corner cross: star via a Steiner point beats the MST.
        pts = [Point(0, 5), Point(10, 5), Point(5, 0), Point(5, 10)]
        steiner = rsmt(pts)
        mst = rectilinear_mst(pts)
        steiner.validate()
        assert steiner.length <= mst.length

    def test_t_configuration(self):
        pts = [Point(0, 0), Point(20, 0), Point(10, 15)]
        tree = rsmt(pts)
        tree.validate()
        # Optimal RSMT is 20 + 15 = 35 via a Steiner tap at (10, 0).
        assert tree.length == pytest.approx(35.0)

    def test_large_net_falls_back_to_mst(self):
        pts = [Point(float(i * 7 % 50), float(i * 13 % 60)) for i in range(
            ONE_STEINER_MAX_PINS + 5
        )]
        tree = rsmt(pts)
        tree.validate()
        assert tree.num_pins == len(pts)

    def test_pin_indices_preserved(self):
        pts = [Point(0, 0), Point(40, 0), Point(20, 30)]
        tree = rsmt(pts)
        for i, p in enumerate(pts):
            assert tree.points[i] == p

    @given(point_lists)
    @settings(max_examples=30, deadline=None)
    def test_rsmt_never_longer_than_mst(self, pts):
        steiner = rsmt(pts)
        mst = rectilinear_mst(pts)
        steiner.validate()
        assert steiner.length <= mst.length + 1e-6

    @given(point_lists)
    @settings(max_examples=30, deadline=None)
    def test_rsmt_at_least_hpwl_over_2ish(self, pts):
        # Any connected tree spanning the pins is at least the HPWL of the
        # pin bbox... for rectilinear trees HPWL is a valid lower bound
        # only for nets routed as a single trunk; use the safe bound:
        # length >= max pairwise Manhattan distance.
        tree = rsmt(pts)
        worst = max(
            (a.manhattan(b) for a in pts for b in pts), default=0.0
        )
        assert tree.length >= worst - 1e-6
