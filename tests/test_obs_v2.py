"""Telemetry v2: sampler, profiler, exporters, sentinel, CLI contracts.

The contracts under test:

* :class:`ResourceSampler` samples into its own lane, merges exactly
  once at stop, and the merged trace stays schema-valid; with a live
  pool its gauges/counters carry the pool tag and per-lane busy
  fractions;
* pool shutdown emits the lifetime counters (steals/requeued/
  compactions/crashes) as ``metric`` events, not only ``stats`` (S1);
* a worker killed mid-span leaves no orphan ``span_start`` after merge,
  and the respawned worker's lane validates against the schema (S3);
* :class:`SpanProfiler` profiles only glob-matched outermost spans and
  writes flamegraph-ready sidecars;
* the Chrome trace-event exporter round-trips a merged trace through
  its own validator, which catches undeclared threads, unbalanced B/E
  and non-monotonic counters;
* the Prometheus exporter renders both labeled and unlabeled registry
  series;
* the sentinel ranks an injected slowdown's exact span path as the top
  regression and flags bench-history drift in the bad direction only;
* the CLI degrades gracefully (documented exit codes) on unreadable,
  meta-less and zero-span traces (S2).
"""

from __future__ import annotations

import json
import time

import pytest

from repro.cli import main
from repro.core.moves import enumerate_moves
from repro.core.objective import SkewVariationProblem
from repro.obs.export import (
    chrome_trace_events,
    prometheus_text,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import SpanProfiler
from repro.obs.report import path_self_times, trace_health
from repro.obs.sampler import ResourceSampler
from repro.obs.schema import validate_events
from repro.obs.sentinel import (
    metric_direction,
    perf_diff_rows,
    render_perf_diff,
    trend_rows,
)
from repro.obs.trace import SCHEMA_VERSION, Tracer, tracing
from repro.parallel import ParallelVerifier
from repro.testcases.mini import build_mini


@pytest.fixture(scope="module")
def problem():
    return SkewVariationProblem.create(build_mini())


@pytest.fixture(scope="module")
def moves(problem):
    found = enumerate_moves(problem.design.tree, problem.design.library)
    assert len(found) >= 4
    return found[:4]


def _meta_event(worker=0):
    return {
        "type": "meta",
        "ts": 0.0,
        "worker": worker,
        "schema": SCHEMA_VERSION,
        "attrs": {"command": "test"},
    }


def _span_pair(span, name, dur, worker=0, parent=None, ts=0.0):
    """A fabricated start/end pair with a controlled duration."""
    return [
        {
            "type": "span_start",
            "ts": ts,
            "worker": worker,
            "span": span,
            "parent": parent,
            "name": name,
        },
        {
            "type": "span_end",
            "ts": ts + dur,
            "worker": worker,
            "span": span,
            "name": name,
            "dur": dur,
        },
    ]


def _synthetic_run(featurize_s):
    """A minimal run trace: optimize -> {featurize, verify} with set costs."""
    events = [_meta_event()]
    events += [
        {
            "type": "span_start",
            "ts": 0.0,
            "worker": 0,
            "span": 0,
            "parent": None,
            "name": "optimize",
        }
    ]
    events += _span_pair(1, "featurize", featurize_s, parent=0, ts=0.01)
    events += _span_pair(2, "verify", 0.2, parent=0, ts=0.02 + featurize_s)
    events += [
        {
            "type": "span_end",
            "ts": 0.03 + featurize_s + 0.2,
            "worker": 0,
            "span": 0,
            "name": "optimize",
            "dur": 0.03 + featurize_s + 0.2,
        }
    ]
    return events


# ----------------------------------------------------------------------
# Resource sampler
# ----------------------------------------------------------------------
class TestResourceSampler:
    def test_rejects_non_positive_interval(self):
        with pytest.raises(ValueError):
            ResourceSampler(Tracer(), interval_s=0.0)

    def test_samples_into_own_lane_and_merges_once(self):
        tracer = Tracer()
        tracer.meta(command="test")
        with tracer.span("run"):
            sampler = ResourceSampler(tracer, interval_s=0.01).start()
            time.sleep(0.05)
            merged = sampler.stop()
        assert sampler.lane != 0
        assert merged > 0
        assert sampler.stop() == 0  # idempotent: nothing merged twice
        lanes = {e["worker"] for e in tracer.events}
        assert lanes == {0, sampler.lane}
        sampled = [e for e in tracer.events if e["worker"] == sampler.lane]
        assert all(e["type"] == "metric" for e in sampled)
        assert validate_events(tracer.events) == []

    def test_process_gauges_present_and_sane(self):
        tracer = Tracer()
        with ResourceSampler(tracer, interval_s=0.01) as sampler:
            time.sleep(0.03)
        by_name = {}
        for event in tracer.events:
            by_name.setdefault(event["name"], []).append(event["value"])
        assert sampler.samples >= 1
        assert all(rss > 0 for rss in by_name["proc.rss_bytes"])
        assert all(cpu >= 0 for cpu in by_name["proc.cpu_pct"])
        assert "shm.segments" in by_name

    def test_pool_series_with_live_pool(self, problem, moves):
        tree = problem.design.tree.clone()
        tracer = Tracer()
        with ParallelVerifier(problem, tree, workers=2) as verifier:
            with ResourceSampler(tracer, interval_s=0.01):
                verifier.verify_batch(tree, list(moves))
                time.sleep(0.03)
        metrics = {
            (e["name"], tuple(sorted((e.get("labels") or {}).items())))
            for e in tracer.events
        }
        tagged = (("pool", "verify"),)
        assert ("pool.queue_depth", tagged) in metrics
        assert ("pool.alive", tagged) in metrics
        assert ("pool.steals", tagged) in metrics
        assert any(
            name == "pool.busy_frac" and dict(labels).get("pool") == "verify"
            for name, labels in metrics
        )
        # Cumulative lifetime counters must be monotonic per series.
        steals = [
            e["value"]
            for e in tracer.events
            if e["name"] == "pool.steals"
        ]
        assert steals == sorted(steals)
        assert all(
            e["kind"] == "counter"
            for e in tracer.events
            if e["name"] == "pool.steals"
        )


# ----------------------------------------------------------------------
# S1: pool shutdown counters become metric events
# ----------------------------------------------------------------------
class TestPoolShutdownCounters:
    def test_close_emits_lifetime_counters(self, problem, moves):
        tree = problem.design.tree.clone()
        with tracing() as tracer:
            with ParallelVerifier(problem, tree, workers=2) as verifier:
                verifier.verify_batch(tree, list(moves))
        emitted = {
            e["name"]: e
            for e in tracer.events
            if e.get("type") == "metric" and e["name"].startswith("pool.")
        }
        for counter in ("steals", "requeued", "compactions", "crashes"):
            event = emitted[f"pool.{counter}"]
            assert event["kind"] == "counter"
            assert event["labels"] == {"pool": "verify"}
            assert event["worker"] == 0

    def test_close_untraced_emits_nothing(self, problem, moves):
        tree = problem.design.tree.clone()
        with ParallelVerifier(problem, tree, workers=2) as verifier:
            verifier.verify_batch(tree, list(moves))
        # No active tracer: close() must not raise and not record anywhere.


# ----------------------------------------------------------------------
# S3: tracing across worker crash/respawn
# ----------------------------------------------------------------------
class TestCrashRespawnTracing:
    def test_crash_leaves_no_orphan_spans(self, problem, moves):
        tree = problem.design.tree.clone()
        with tracing() as tracer:
            tracer.meta(command="test")
            with tracer.span("run"):
                with ParallelVerifier(
                    problem, tree, workers=2, backend="shm"
                ) as verifier:
                    verifier._pool.crash_worker_after(0, 0)
                    verifier.verify_batch(tree, list(moves))
                    assert verifier._pool.stats["crashes"] == 1
                    respawn_lanes = {
                        handle.lane for handle in verifier._pool._workers
                    }
                    verifier.verify_batch(tree, list(moves))
        # A worker killed mid-span never ships its events (they ride the
        # response tuple), so the merged trace has no dangling
        # span_start — the schema validator's unclosed-span check is the
        # orphan detector.
        assert validate_events(tracer.events) == []
        starts = sum(1 for e in tracer.events if e["type"] == "span_start")
        ends = sum(1 for e in tracer.events if e["type"] == "span_end")
        assert starts == ends > 0
        # The respawned worker traced into a fresh lane that validates
        # on its own (per-lane invariants hold lane by lane).
        traced_lanes = {e["worker"] for e in tracer.events}
        assert respawn_lanes & traced_lanes
        for lane in respawn_lanes & traced_lanes:
            # Per-lane LIFO/shape invariants hold for the lane alone once
            # the cross-lane parent references (which point at lane-0
            # spans outside this subset) are dropped.
            lane_events = [
                {
                    k: v
                    for k, v in e.items()
                    if k not in ("parent", "parent_worker")
                }
                if e["type"] == "span_start"
                else e
                for e in tracer.events
                if e["worker"] == lane
            ]
            assert lane_events
            assert validate_events([_meta_event(), *lane_events]) == []


# ----------------------------------------------------------------------
# Span profiler
# ----------------------------------------------------------------------
class TestSpanProfiler:
    def test_profiles_matching_spans_only(self):
        profiler = SpanProfiler("hot*")
        tracer = Tracer()
        tracer.profiler = profiler
        with tracer.span("cold"):
            pass
        with tracer.span("hot_loop"):
            sum(range(1000))
        assert profiler.profiled_spans == ["hot_loop"]
        assert profiler.calls("hot_loop") == 1
        assert profiler.calls("cold") == 0

    def test_nested_matches_profile_outermost_only(self):
        profiler = SpanProfiler("*")
        tracer = Tracer()
        tracer.profiler = profiler
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        # cProfile cannot nest: the inner match is skipped, not fatal.
        assert profiler.profiled_spans == ["outer"]
        assert profiler.calls("outer") == 1
        assert profiler.calls("inner") == 0

    def test_report_and_collapsed_output(self):
        profiler = SpanProfiler("work")
        tracer = Tracer()
        tracer.profiler = profiler
        with tracer.span("work"):
            json.dumps({"payload": list(range(100))})
        report = profiler.report()
        assert "span 'work'" in report
        assert "cumulative" in report
        folded = profiler.collapsed()
        lines = folded.strip().splitlines()
        assert lines
        for line in lines:
            stack, _, count = line.rpartition(" ")
            assert stack.startswith("span:work")
            assert int(count) > 0

    def test_write_sidecars(self, tmp_path):
        profiler = SpanProfiler("work")
        tracer = Tracer()
        tracer.profiler = profiler
        with tracer.span("work"):
            sorted(range(50), reverse=True)
        trace = tmp_path / "t.jsonl"
        written = profiler.write_sidecars(str(trace))
        assert written == [f"{trace}.profile.txt", f"{trace}.folded"]
        assert (tmp_path / "t.jsonl.profile.txt").read_text()
        assert (tmp_path / "t.jsonl.folded").read_text()


# ----------------------------------------------------------------------
# Chrome trace-event export
# ----------------------------------------------------------------------
class TestChromeExport:
    def _traced_events(self):
        tracer = Tracer()
        tracer.meta(command="optimize")
        with tracer.span("run", phase="flow"):
            with tracer.span("stage") as span:
                span.set(items=3)
            tracer.metric("cache_hits", 5, kind="counter")
            tracer.metric("rss", 1.5, kind="gauge", labels={"proc": "main"})
        return tracer.events

    def test_round_trip_validates(self, tmp_path):
        events = self._traced_events()
        out = tmp_path / "chrome.json"
        count = write_chrome_trace(events, str(out))
        payload = json.loads(out.read_text())
        assert len(payload["traceEvents"]) == count
        assert validate_chrome_trace(payload) == []

    def test_span_pairs_become_b_e(self):
        payload = chrome_trace_events(self._traced_events())
        phs = [e["ph"] for e in payload["traceEvents"]]
        assert phs.count("B") == phs.count("E") == 2
        begins = [e for e in payload["traceEvents"] if e["ph"] == "B"]
        assert begins[0]["name"] == "run"
        assert begins[0]["cat"] == "flow"

    def test_labels_fold_into_counter_name(self):
        payload = chrome_trace_events(self._traced_events())
        counters = [e for e in payload["traceEvents"] if e["ph"] == "C"]
        names = {e["name"] for e in counters}
        assert "cache_hits" in names
        assert "rss{proc=main}" in names

    def test_validator_catches_undeclared_thread(self):
        payload = chrome_trace_events(self._traced_events())
        payload["traceEvents"].append(
            {"ph": "B", "pid": 1, "tid": 99, "ts": 1.0, "name": "ghost"}
        )
        errors = validate_chrome_trace(payload)
        assert any("undeclared thread" in e for e in errors)
        assert any("never closed" in e for e in errors)

    def test_validator_catches_non_lifo_end(self):
        payload = chrome_trace_events(self._traced_events())
        events = payload["traceEvents"]
        b_positions = [i for i, e in enumerate(events) if e["ph"] == "B"]
        events[b_positions[1]]["name"] = "renamed"
        errors = validate_chrome_trace(payload)
        assert any("does not match open B" in e for e in errors)

    def test_validator_catches_decreasing_counter(self):
        tracer = Tracer()
        tracer.metric("hits", 5, kind="counter")
        tracer.metric("hits", 3, kind="counter")
        errors = validate_chrome_trace(chrome_trace_events(tracer.events))
        assert any("monotonic counter" in e for e in errors)

    def test_gauges_may_decrease(self):
        tracer = Tracer()
        tracer.metric("rss", 5, kind="gauge")
        tracer.metric("rss", 3, kind="gauge")
        assert validate_chrome_trace(chrome_trace_events(tracer.events)) == []


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
class TestPrometheusText:
    def test_unlabeled_and_labeled_series_render(self):
        registry = MetricsRegistry()
        registry.count("pool.crashes", 2)
        registry.gauge("overhead_pct", 1.5)
        registry.count("steals", 3, pool="verify")
        text = prometheus_text(registry)
        assert "# TYPE repro_pool_crashes counter" in text
        assert "repro_pool_crashes 2" in text
        assert "repro_overhead_pct 1.5" in text
        assert 'repro_steals{pool="verify"} 3' in text

    def test_timers_map_to_counter_type(self):
        registry = MetricsRegistry()
        with registry.timer("featurize"):
            pass
        text = prometheus_text(registry)
        assert "# TYPE repro_featurize_seconds counter" in text
        assert "# TYPE repro_featurize_count counter" in text

    def test_non_numeric_payloads_skipped(self):
        registry = MetricsRegistry()
        registry.set("note", "hello")
        registry.gauge("flag", True)
        assert prometheus_text(registry) == ""


# ----------------------------------------------------------------------
# Sentinel: perf-diff and bench trend
# ----------------------------------------------------------------------
class TestPerfDiff:
    def test_injected_slowdown_ranks_top(self):
        # Acceptance criterion: a synthetic slowdown in one stage must
        # rank that exact span path as the top regression, not an
        # ancestor (self time, not total).
        fast = _synthetic_run(featurize_s=0.1)
        slow = _synthetic_run(featurize_s=0.9)
        regressions, improvements = perf_diff_rows(fast, slow)
        assert regressions[0][0] == "optimize/featurize"
        assert improvements == []
        rendered = render_perf_diff(fast, slow, label_a="fast", label_b="slow")
        assert "optimize/featurize" in rendered
        assert "(none)" in rendered  # empty improvements placeholder

    def test_lane_normalization(self):
        # The same per-lane cost fanned over 2 lanes must not read as 2x.
        one = [_meta_event()] + _span_pair(0, "verify", 0.5, worker=1)
        two = (
            [_meta_event()]
            + _span_pair(0, "verify", 0.5, worker=1)
            + _span_pair(0, "verify", 0.5, worker=2)
        )
        regressions, improvements = perf_diff_rows(one, two)
        assert regressions == [] and improvements == []

    def test_new_path_marked(self):
        base = _synthetic_run(featurize_s=0.1)
        added = base + _span_pair(9, "extra", 0.3, ts=5.0)
        regressions, _ = perf_diff_rows(base, added)
        assert regressions[0][0] == "extra"
        assert regressions[0][4] == "new"

    def test_path_self_times_counts_lanes(self):
        events = (
            _span_pair(0, "verify", 0.5, worker=1)
            + _span_pair(0, "verify", 0.5, worker=2)
        )
        per_path = path_self_times(events)
        count, seconds, lanes = per_path["verify"]
        assert (count, lanes) == (2, 2)
        assert seconds == pytest.approx(1.0)


class TestTrend:
    def _history(self, *values, name="verify_speedup"):
        return {
            "BENCH_x.json": [
                (f"run{i}/BENCH_x.json", {name: value})
                for i, value in enumerate(values)
            ]
        }

    def test_direction_classification(self):
        assert metric_direction("verify_speedup") == "higher"
        assert metric_direction("overhead_pct") == "lower"
        assert metric_direction("wall_s") is None

    def test_speedup_drop_fails(self):
        rows, failures = trend_rows(self._history(2.0, 2.1, 1.0), band=0.25)
        assert rows[0][-1] == "FAIL"
        assert len(failures) == 1
        assert "verify_speedup" in failures[0]

    def test_speedup_rise_passes(self):
        _rows, failures = trend_rows(self._history(2.0, 2.1, 3.0), band=0.25)
        assert failures == []

    def test_overhead_rise_fails(self):
        _rows, failures = trend_rows(
            self._history(1.0, 1.1, 2.0, name="overhead_pct"), band=0.25
        )
        assert len(failures) == 1

    def test_baseline_is_median_of_prior(self):
        # Latest (1.6) vs median(2.0, 0.1, 2.2) = 2.0 -> -20%, in band.
        _rows, failures = trend_rows(
            self._history(2.0, 0.1, 2.2, 1.6), band=0.25
        )
        assert failures == []

    def test_single_record_skipped(self):
        rows, failures = trend_rows(self._history(2.0), band=0.25)
        assert rows[0][1] == "(single record)"
        assert failures == []

    def test_zero_baseline_never_gates(self):
        # A 0% overhead baseline makes relative drift undefined; the row
        # reports the absolute move but cannot fail (ceilings in
        # compare_bench own the absolute contract).
        rows, failures = trend_rows(
            self._history(0.0, 5.0, name="overhead_pct"), band=0.25
        )
        assert failures == []
        assert "zero baseline" in rows[0][-1]


# ----------------------------------------------------------------------
# S2 + CLI: graceful degradation, perf-diff/trend/chrome-out end-to-end
# ----------------------------------------------------------------------
class TestCLIv2:
    def _write(self, path, events):
        with open(path, "w") as handle:
            for event in events:
                handle.write(json.dumps(event) + "\n")
        return str(path)

    def test_report_missing_file_exits_2(self, capsys, tmp_path):
        assert main(["report", "--trace", str(tmp_path / "nope.jsonl")]) == 2
        assert "cannot read trace" in capsys.readouterr().err

    def test_report_empty_trace_exits_2(self, capsys, tmp_path):
        trace = self._write(tmp_path / "empty.jsonl", [])
        assert main(["report", "--trace", trace]) == 2
        assert "empty trace" in capsys.readouterr().err

    def test_report_meta_less_trace_exits_2(self, capsys, tmp_path):
        trace = self._write(
            tmp_path / "nometa.jsonl", _span_pair(0, "loose", 0.1)
        )
        assert main(["report", "--trace", trace]) == 2
        assert "no meta event" in capsys.readouterr().err

    def test_report_zero_span_trace_exits_2(self, capsys, tmp_path):
        trace = self._write(tmp_path / "nospans.jsonl", [_meta_event()])
        assert main(["report", "--trace", trace]) == 2
        assert "zero spans" in capsys.readouterr().err

    def test_perf_diff_end_to_end(self, capsys, tmp_path):
        fast = self._write(tmp_path / "a.jsonl", _synthetic_run(0.1))
        slow = self._write(tmp_path / "b.jsonl", _synthetic_run(0.9))
        assert main(["report", "--perf-diff", fast, slow]) == 0
        out = capsys.readouterr().out
        assert "perf-diff" in out
        assert "optimize/featurize" in out

    def test_perf_diff_bad_input_exits_2(self, capsys, tmp_path):
        good = self._write(tmp_path / "a.jsonl", _synthetic_run(0.1))
        assert main(
            ["report", "--perf-diff", good, str(tmp_path / "nope.jsonl")]
        ) == 2

    def test_chrome_out_written_and_valid(self, capsys, tmp_path):
        trace = self._write(tmp_path / "t.jsonl", _synthetic_run(0.1))
        out = tmp_path / "chrome.json"
        code = main(["report", "--trace", trace, "--chrome-out", str(out)])
        assert code == 0
        payload = json.loads(out.read_text())
        assert validate_chrome_trace(payload) == []
        assert "Chrome trace-event JSON written" in capsys.readouterr().out

    def test_profile_without_trace_out_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["optimize", "--profile", "local_opt*"])
        assert excinfo.value.code == 2
        assert "--trace-out" in capsys.readouterr().err

    def test_trend_exit_codes(self, capsys, tmp_path):
        old = tmp_path / "old"
        new = tmp_path / "new"
        old.mkdir(), new.mkdir()
        (old / "BENCH_x.json").write_text('{"verify_speedup": 2.0}\n')
        (new / "BENCH_x.json").write_text('{"verify_speedup": 1.0}\n')
        drift = [
            "trend", str(old / "BENCH_x.json"), str(new / "BENCH_x.json")
        ]
        assert main(drift) == 1
        assert "TREND FAIL" in capsys.readouterr().err
        # A wide band tolerates the same history.
        assert main(drift + ["--band", "0.9"]) == 0
        capsys.readouterr()
        # Nothing comparable: one record per group.
        assert main(["trend", str(old / "BENCH_x.json")]) == 2
        assert "nothing was compared" in capsys.readouterr().err
        assert main(["trend", str(tmp_path / "nope.json")]) == 2

    def test_schema_cli_unreadable_exits_2(self, tmp_path, capsys):
        from repro.obs.schema import main as schema_main

        assert schema_main([str(tmp_path / "nope.jsonl")]) == 2
        assert "unreadable" in capsys.readouterr().err

    def test_export_cli_contract(self, tmp_path, capsys):
        from repro.obs.export import main as export_main

        trace = self._write(tmp_path / "t.jsonl", _synthetic_run(0.1))
        out = tmp_path / "chrome.json"
        assert export_main([trace, "--chrome", str(out), "--check"]) == 0
        assert "OK" in capsys.readouterr().out
        missing = str(tmp_path / "nope.jsonl")
        assert export_main([missing, "--chrome", str(out)]) == 2

    def test_trace_health_reasons(self):
        assert trace_health([]) == "empty trace (no events)"
        assert "no meta" in trace_health(_span_pair(0, "x", 0.1))
        assert "zero spans" in trace_health([_meta_event()])
        assert trace_health(_synthetic_run(0.1)) is None
