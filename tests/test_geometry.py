"""Geometry primitives: Manhattan metrics, bounding boxes, polylines."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import (
    BBox,
    COMPASS_DIRECTIONS,
    Point,
    compass_offset,
    hpwl,
    interpolate_along,
    path_length,
    uniform_points_between,
)

coords = st.floats(-1e4, 1e4, allow_nan=False, allow_infinity=False)
points = st.builds(Point, coords, coords)


class TestPoint:
    def test_manhattan_basic(self):
        assert Point(0, 0).manhattan(Point(3, 4)) == 7.0

    def test_euclidean_basic(self):
        assert Point(0, 0).euclidean(Point(3, 4)) == pytest.approx(5.0)

    def test_midpoint(self):
        assert Point(0, 0).midpoint(Point(4, 6)) == Point(2, 3)

    def test_translated(self):
        assert Point(1, 1).translated(2, -3) == Point(3, -2)

    @given(points, points)
    def test_manhattan_symmetric(self, a, b):
        assert a.manhattan(b) == pytest.approx(b.manhattan(a))

    @given(points, points, points)
    def test_manhattan_triangle_inequality(self, a, b, c):
        assert a.manhattan(c) <= a.manhattan(b) + b.manhattan(c) + 1e-6

    @given(points, points)
    def test_euclidean_bounds_manhattan(self, a, b):
        # d2 <= d1 <= sqrt(2) * d2 in the plane.
        d1 = a.manhattan(b)
        d2 = a.euclidean(b)
        assert d2 <= d1 + 1e-6
        assert d1 <= math.sqrt(2) * d2 + 1e-6


class TestCompass:
    def test_all_eight_directions(self):
        assert len(COMPASS_DIRECTIONS) == 8

    def test_cardinal_offsets(self):
        assert compass_offset("N", 10.0) == (0.0, 10.0)
        assert compass_offset("SW", 10.0) == (-10.0, -10.0)

    def test_unknown_direction_rejected(self):
        with pytest.raises(ValueError):
            compass_offset("UP", 10.0)


class TestBBox:
    def test_malformed_rejected(self):
        with pytest.raises(ValueError):
            BBox(1.0, 0.0, 0.0, 1.0)

    def test_area_and_half_perimeter(self):
        box = BBox(0, 0, 4, 2)
        assert box.area == 8.0
        assert box.half_perimeter == 6.0

    def test_aspect_ratio_at_most_one(self):
        assert BBox(0, 0, 10, 2).aspect_ratio == pytest.approx(0.2)
        assert BBox(0, 0, 3, 3).aspect_ratio == 1.0

    def test_degenerate_aspect_ratio(self):
        assert BBox(0, 0, 0, 0).aspect_ratio == 1.0

    def test_contains_and_clamp(self):
        box = BBox(0, 0, 10, 10)
        assert box.contains(Point(5, 5))
        assert not box.contains(Point(11, 5))
        assert box.clamp(Point(11, -2)) == Point(10, 0)

    def test_of_points_empty_rejected(self):
        with pytest.raises(ValueError):
            BBox.of_points([])

    @given(st.lists(points, min_size=1, max_size=12))
    def test_of_points_contains_all(self, pts):
        box = BBox.of_points(pts)
        assert all(box.contains(p, tol=1e-9) for p in pts)

    def test_inflated(self):
        box = BBox(0, 0, 2, 2).inflated(1.0)
        assert (box.xlo, box.ylo, box.xhi, box.yhi) == (-1, -1, 3, 3)


class TestPolylines:
    def test_path_length_l_shape(self):
        assert path_length([Point(0, 0), Point(3, 0), Point(3, 4)]) == 7.0

    def test_hpwl_matches_bbox(self):
        assert hpwl([Point(0, 0), Point(3, 4), Point(1, 1)]) == 7.0

    def test_hpwl_single_point(self):
        assert hpwl([Point(5, 5)]) == 0.0

    def test_interpolate_endpoints(self):
        poly = [Point(0, 0), Point(10, 0)]
        assert interpolate_along(poly, 0.0) == Point(0, 0)
        assert interpolate_along(poly, 1.0) == Point(10, 0)

    def test_interpolate_midpoint_of_l(self):
        poly = [Point(0, 0), Point(4, 0), Point(4, 4)]
        mid = interpolate_along(poly, 0.5)
        assert mid == Point(4, 0)

    def test_uniform_points_are_evenly_spaced(self):
        pts = uniform_points_between(Point(0, 0), Point(30, 0), 2)
        assert pts == [Point(10, 0), Point(20, 0)]

    def test_uniform_points_via_detour(self):
        pts = uniform_points_between(
            Point(0, 0), Point(10, 0), 1, via=(Point(0, 5), Point(10, 5))
        )
        # Route length 10 + 2*5 = 20; midpoint is 10 along: at (5, 5).
        assert pts[0] == Point(5, 5)

    def test_uniform_points_rejects_negative_count(self):
        with pytest.raises(ValueError):
            uniform_points_between(Point(0, 0), Point(1, 0), -1)

    @given(points, points, st.integers(0, 6))
    @settings(max_examples=40)
    def test_uniform_points_on_route(self, a, b, count):
        pts = uniform_points_between(a, b, count)
        assert len(pts) == count
        # Every point lies within the bounding box of the endpoints.
        if count:
            box = BBox.of_points([a, b])
            assert all(box.contains(p, tol=1e-6) for p in pts)
