"""Differential tests: batched timing kernel vs the scalar reference.

The kernel (:mod:`repro.sta.kernel`) is a pure execution-engine swap —
same model, same float operations, vectorized.  Its contract is
agreement with the reference backend to ≤1e-9 ps on every artifact at
every corner (in practice the two are bit-identical), and byte-identical
local-opt trajectories with the kernel on and off, including under the
workers=4 verification pool.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.local_opt import LocalOptConfig, LocalOptimizer
from repro.core.ml.training import train_predictor
from repro.core.moves import apply_move_undoable, enumerate_moves, undo_move
from repro.core.objective import SkewVariationProblem
from repro.sta.incremental import IncrementalTimer
from repro.sta.kernel import ArrayMap, TimingKernel
from repro.sta.timer import GoldenTimer
from repro.testcases.cls1 import build_cls1
from repro.testcases.mini import build_mini

TOL_PS = 1e-9

FIELDS = (
    "arrival",
    "input_slew",
    "driver_delay",
    "driver_load",
    "driver_out_slew",
    "edge_delay",
    "edge_elmore",
)


@pytest.fixture(scope="module")
def mini4_design():
    return build_mini(corner_names=("c0", "c1", "c2", "c3"))


@pytest.fixture(scope="module")
def cls1_design():
    return build_cls1(1)


def _assert_timings_match(got, want, context):
    assert set(got) == set(want), f"{context}: corner sets differ"
    for name in want:
        got_ct, want_ct = got[name], want[name]
        for field in FIELDS:
            got_map = getattr(got_ct, field)
            want_map = getattr(want_ct, field)
            assert set(got_map) == set(want_map), (
                f"{context} {name}.{field}: key sets differ"
            )
            for key, value in want_map.items():
                assert abs(got_map[key] - value) <= TOL_PS, (
                    f"{context} {name}.{field}[{key}]: "
                    f"{got_map[key]!r} != {value!r}"
                )


# ----------------------------------------------------------------------
# Full-tree propagation
# ----------------------------------------------------------------------
@pytest.mark.parametrize("metric", ["d2m", "elmore"])
def test_golden_kernel_matches_reference_mini(mini4_design, metric):
    design = mini4_design
    ref = GoldenTimer(
        design.library, wire_metric=metric, wire_backend="reference"
    )
    ker = GoldenTimer(design.library, wire_metric=metric, wire_backend="kernel")
    _assert_timings_match(
        ker.analyze_all_corners(design.tree),
        ref.analyze_all_corners(design.tree),
        f"MINI/{metric}",
    )


@pytest.mark.parametrize("metric", ["d2m", "elmore"])
def test_golden_kernel_matches_reference_cls1(cls1_design, metric):
    design = cls1_design
    ref = GoldenTimer(
        design.library, wire_metric=metric, wire_backend="reference"
    )
    ker = GoldenTimer(design.library, wire_metric=metric, wire_backend="kernel")
    _assert_timings_match(
        ker.analyze_all_corners(design.tree),
        ref.analyze_all_corners(design.tree),
        f"CLS1/{metric}",
    )


def test_single_corner_analysis_matches(mini4_design):
    design = mini4_design
    ref = GoldenTimer(design.library, wire_backend="reference")
    ker = GoldenTimer(design.library, wire_backend="kernel")
    for corner in design.library.corners:
        _assert_timings_match(
            {corner.name: ker.analyze_corner(design.tree, corner)},
            {corner.name: ref.analyze_corner(design.tree, corner)},
            f"single/{corner.name}",
        )


def test_latencies_and_objective_match(cls1_design):
    design = cls1_design
    ref = GoldenTimer(design.library, wire_backend="reference")
    ker = GoldenTimer(design.library, wire_backend="kernel")
    want = ref.time_tree(design.tree, design.pairs)
    got = ker.time_tree(design.tree, design.pairs)
    assert got.latencies == want.latencies
    assert got.total_variation == want.total_variation


# ----------------------------------------------------------------------
# Incremental retime path: randomized move walks
# ----------------------------------------------------------------------
def _differential_walk(design, metric, steps, seed, commit_every=5):
    """Drive kernel and reference IncrementalTimers through one move walk.

    Both engines see the same apply/undo/commit stream; every step
    compares every artifact at every corner.  Returns the number of
    moves applied.
    """
    ref = IncrementalTimer(
        design.library, wire_metric=metric, wire_backend="reference"
    )
    ker = IncrementalTimer(
        design.library, wire_metric=metric, wire_backend="kernel"
    )
    rng = np.random.default_rng(seed)
    tree_ref = design.tree.clone()
    tree_ker = design.tree.clone()
    ref.ensure(tree_ref)
    ker.ensure(tree_ker)
    pairs = design.pairs
    moves = enumerate_moves(tree_ref, design.library)
    applied = 0
    while applied < steps and moves:
        move = moves[int(rng.integers(len(moves)))]
        undo_ref = apply_move_undoable(
            tree_ref, design.legalizer, design.library, move
        )
        undo_ker = apply_move_undoable(
            tree_ker, design.legalizer, design.library, move
        )
        applied += 1
        commit = applied % commit_every == 0
        if commit:
            got = ker.advance(tree_ker, undo_ker.dirty, pairs)
            want = ref.advance(tree_ref, undo_ref.dirty, pairs)
            # Committed-state invalidation must match: the candidate
            # pipeline keys its reuse decisions off these sets.
            assert ker.last_touched == ref.last_touched, applied
            moves = enumerate_moves(tree_ref, design.library)
        else:
            got = ker.preview(tree_ker, undo_ker.dirty, pairs)
            want = ref.preview(tree_ref, undo_ref.dirty, pairs)
        _assert_timings_match(
            got.per_corner, want.per_corner, f"step {applied}"
        )
        assert got.latencies == want.latencies, applied
        assert got.total_variation == want.total_variation, applied
        if not commit:
            undo_move(tree_ref, undo_ref)
            ref.rebase(tree_ref)
            undo_move(tree_ker, undo_ker)
            ker.rebase(tree_ker)
    assert applied >= steps
    # The rigid-shift bookkeeping must replicate decision for decision.
    assert ker.stats["subtree_shifts"] == ref.stats["subtree_shifts"]
    assert ker.stats["retimes"] == ref.stats["retimes"]
    return applied


@pytest.mark.parametrize(
    "metric,steps,seed",
    [("d2m", 120, 2015), ("elmore", 90, 607)],
)
def test_random_walk_kernel_matches_reference(mini4_design, metric, steps, seed):
    """≥200 randomized apply/undo/commit steps across both wire metrics."""
    _differential_walk(mini4_design, metric, steps=steps, seed=seed)


def test_random_walk_cls1(cls1_design):
    _differential_walk(cls1_design, "d2m", steps=20, seed=42)


# ----------------------------------------------------------------------
# Trajectory byte-identity, kernel on vs off
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def predictor():
    design = build_mini()
    return train_predictor(design.library, [], "full_rsmt_d2m")


def _trajectory(predictor, wire_backend, workers):
    design = build_mini()
    timer = GoldenTimer(design.library, wire_backend=wire_backend)
    problem = SkewVariationProblem.create(design, timer=timer)
    config = LocalOptConfig(max_iterations=3, workers=workers, top_r=5)
    outcome = LocalOptimizer(problem, predictor, config).run()
    return [
        (
            repr(record.move),
            record.predicted_reduction_ps,
            record.actual_reduction_ps,
            record.objective_after_ps,
        )
        for record in outcome.history
    ]


def test_local_opt_trajectory_identical_kernel_on_off(predictor):
    """Serial local opt commits the exact same move stream either way."""
    assert _trajectory(predictor, "kernel", workers=1) == _trajectory(
        predictor, "reference", workers=1
    )


def test_pool_trajectory_identical_kernel_on_off(predictor):
    """A workers=4 pool run is byte-identical with the kernel on and off.

    Workers outnumber the verification batch, so this exercises the
    corner-sharded path with kernel-backed replicas on both sides of the
    comparison.
    """
    kernel_on = _trajectory(predictor, "kernel", workers=4)
    kernel_off = _trajectory(predictor, "reference", workers=4)
    assert kernel_on == kernel_off
    assert len(kernel_on) > 0


# ----------------------------------------------------------------------
# View semantics
# ----------------------------------------------------------------------
def test_array_map_behaves_like_dict(mini4_design):
    design = mini4_design
    ref = GoldenTimer(design.library, wire_backend="reference")
    ker = GoldenTimer(design.library, wire_backend="kernel")
    corner = design.library.corners[0]
    want = ref.analyze_corner(design.tree, corner)
    got = ker.analyze_corner(design.tree, corner)
    assert isinstance(got.arrival, ArrayMap)
    # Mapping protocol: equality against the reference dicts.
    assert dict(got.arrival) == dict(want.arrival)
    assert got.driver_delay == dict(want.driver_delay)
    assert len(got.edge_delay) == len(want.edge_delay)
    assert sorted(got.input_slew.keys()) == sorted(want.input_slew.keys())
    # Masked keys raise and report absent, like the reference dicts.
    root = design.tree.root
    assert root not in got.edge_delay
    with pytest.raises(KeyError):
        got.edge_delay[root]
    assert got.edge_delay.get(root) is None
    sink = design.tree.sinks()[0]
    assert sink not in got.driver_load
    assert got.arrival.get(sink) == want.arrival[sink]


def test_kernel_shares_edge_cache_with_incremental(mini4_design):
    design = mini4_design
    inc = IncrementalTimer(design.library, wire_backend="kernel")
    inc.ensure(design.tree.clone())
    kernel = inc._kernel
    assert isinstance(kernel, TimingKernel)
    assert kernel.edge_cache is inc.edge_cache
    assert inc.edge_cache.misses > 0
