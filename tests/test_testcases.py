"""Testcase generators: mini, CLS1, CLS2."""

import pytest

from repro.testcases.mini import build_mini


class TestMini:
    def test_structure(self, mini_design):
        d = mini_design
        d.tree.validate()
        assert len(d.tree.sinks()) == 48
        assert len(d.pairs) > 0
        assert all(p[0] != p[1] for p in d.pairs)

    def test_pairs_reference_real_sinks(self, mini_design):
        sinks = set(mini_design.tree.sinks())
        for launch, capture in mini_design.pairs:
            assert launch in sinks and capture in sinks

    def test_deterministic(self):
        a = build_mini(seed=11)
        b = build_mini(seed=11)
        assert a.pairs == b.pairs
        assert a.tree.total_wirelength() == pytest.approx(
            b.tree.total_wirelength()
        )

    def test_seed_changes_design(self):
        a = build_mini(seed=11)
        b = build_mini(seed=12)
        assert a.tree.total_wirelength() != pytest.approx(
            b.tree.total_wirelength()
        )

    def test_clock_cell_accounting(self, mini_design):
        d = mini_design
        assert d.clock_cell_count() == 2 * (len(d.tree.buffers()) + 1)
        assert d.clock_cell_area_um2() > 0.0

    def test_skew_variation_exists(self, mini_problem):
        """The CTS tree must exhibit cross-corner variation to optimize."""
        assert mini_problem.baseline.total_variation > 50.0

    def test_nominal_balanced_tighter_than_offcorner(self, mini_problem):
        skews = mini_problem.baseline.skews.local_skew
        # Balanced at c0, so the slow corner c1 shows more skew.
        assert skews["c1"] > skews["c0"]


@pytest.mark.slow
class TestCLS1:
    @pytest.fixture(scope="class")
    def cls1(self):
        from repro.testcases.cls1 import build_cls1

        return build_cls1(1, balance_rounds=1)

    def test_scale(self, cls1):
        assert len(cls1.tree.sinks()) >= 300
        assert len(cls1.datapaths) >= 400
        cls1.tree.validate()

    def test_corners(self, cls1):
        assert [c.name for c in cls1.library.corners] == ["c0", "c1", "c3"]

    def test_four_quadrants_populated(self, cls1):
        mid_x = (cls1.region.xlo + cls1.region.xhi) / 2
        mid_y = (cls1.region.ylo + cls1.region.yhi) / 2
        quads = set()
        for sink in cls1.tree.sinks():
            loc = cls1.tree.node(sink).location
            quads.add((loc.x < mid_x, loc.y < mid_y))
        assert len(quads) == 4

    def test_variant_2_differs(self):
        from repro.testcases.cls1 import build_cls1

        v2 = build_cls1(2, balance_rounds=0)
        assert v2.name == "CLS1v2"

    def test_invalid_variant(self):
        from repro.testcases.cls1 import build_cls1

        with pytest.raises(ValueError):
            build_cls1(3)


@pytest.mark.slow
class TestCLS2:
    @pytest.fixture(scope="class")
    def cls2(self):
        from repro.testcases.cls2 import build_cls2

        return build_cls2(balance_rounds=1)

    def test_scale_and_corners(self, cls2):
        assert len(cls2.tree.sinks()) >= 400
        assert [c.name for c in cls2.library.corners] == ["c0", "c1", "c2"]
        cls2.tree.validate()

    def test_long_distance_pairs_exist(self, cls2):
        """The memory-controller signature: ~1mm launch-capture spans."""
        locations = {
            s: cls2.tree.node(s).location for s in cls2.tree.sinks()
        }
        spans = [
            locations[p.launch].manhattan(locations[p.capture])
            for p in cls2.datapaths
        ]
        assert max(spans) > 800.0
