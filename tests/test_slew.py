"""PERI slew propagation and wire slew degradation."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sta.slew import peri_slew, wire_degraded_slew, wire_step_slew

positive = st.floats(0.0, 1e4, allow_nan=False)


class TestPeri:
    def test_zero_input_passes_step_slew(self):
        assert peri_slew(0.0, 12.0) == pytest.approx(12.0)

    def test_zero_step_passes_input(self):
        assert peri_slew(9.0, 0.0) == pytest.approx(9.0)

    def test_rss_combination(self):
        assert peri_slew(3.0, 4.0) == pytest.approx(5.0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            peri_slew(-1.0, 1.0)

    @given(positive, positive)
    def test_output_bounds(self, a, b):
        out = peri_slew(a, b)
        assert max(a, b) - 1e-9 <= out <= a + b + 1e-9

    @given(positive, positive, positive)
    def test_monotone(self, a, b, extra):
        assert peri_slew(a + extra, b) >= peri_slew(a, b) - 1e-9


class TestWireSlew:
    def test_step_slew_is_ln9_elmore(self):
        assert wire_step_slew(10.0) == pytest.approx(math.log(9.0) * 10.0)

    def test_zero_wire_preserves_slew(self):
        assert wire_degraded_slew(20.0, 0.0) == pytest.approx(20.0)

    def test_degradation_monotone_in_wire(self):
        assert wire_degraded_slew(20.0, 10.0) > wire_degraded_slew(20.0, 5.0)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            wire_step_slew(-1.0)

    @given(positive, positive)
    def test_never_sharpens(self, slew, elmore):
        assert wire_degraded_slew(slew, elmore) >= slew - 1e-9
