"""The global / local / global-local flows (paper Figure 1, Table 5 rows)."""

import pytest

from repro.core.framework import (
    FrameworkConfig,
    GlobalLocalOptimizer,
    GlobalOptConfig,
    GlobalOptimizer,
    TechnologyCache,
)
from repro.core.local_opt import LocalOptConfig
from repro.core.ml.training import train_predictor


@pytest.fixture(scope="module")
def tech(mini_design):
    return TechnologyCache(mini_design.library)


@pytest.fixture(scope="module")
def predictor(library_cls1):
    return train_predictor(library_cls1, [], "full_rsmt_d2m")


@pytest.fixture(scope="module")
def fast_config():
    return FrameworkConfig(
        global_config=GlobalOptConfig(sweep_factors=(1.1,), batch_size=8),
        local_config=LocalOptConfig(
            max_iterations=4, max_batches_per_iteration=2
        ),
    )


@pytest.fixture(scope="module")
def global_result(mini_problem, tech):
    optimizer = GlobalOptimizer(
        mini_problem, tech, GlobalOptConfig(sweep_factors=(1.1,), batch_size=8)
    )
    return optimizer.run()


class TestTechnologyCache:
    def test_luts_cached(self, tech):
        assert tech.stage_luts is tech.stage_luts

    def test_bounds_cached(self, tech):
        assert tech.ratio_bounds is tech.ratio_bounds


@pytest.mark.slow
class TestGlobalFlow:
    def test_never_worsens(self, global_result):
        assert (
            global_result.final_objective_ps
            <= global_result.initial_objective_ps + 1e-9
        )

    def test_reduces_variation(self, global_result):
        assert global_result.total_reduction_ps > 0.0

    def test_tree_valid(self, global_result):
        global_result.tree.validate()

    def test_no_local_skew_degradation(self, global_result, mini_problem):
        final = mini_problem.evaluate(global_result.tree)
        assert not final.skews.degraded_local_skew(
            mini_problem.baseline.skews, tol_ps=0.5
        )

    def test_batch_accounting(self, global_result):
        assert global_result.batches_committed >= 1
        assert global_result.arcs_realized >= 1


@pytest.mark.slow
class TestFlows:
    def test_unknown_flow_rejected(self, mini_problem, predictor, tech):
        optimizer = GlobalLocalOptimizer(mini_problem, predictor, tech)
        with pytest.raises(ValueError):
            optimizer.run("ultra")

    def test_local_flow_requires_predictor(self, mini_problem, tech):
        optimizer = GlobalLocalOptimizer(mini_problem, None, tech)
        with pytest.raises(ValueError):
            optimizer.run("local")

    def test_global_local_chains(self, mini_problem, predictor, tech, fast_config):
        optimizer = GlobalLocalOptimizer(
            mini_problem, predictor, tech, fast_config
        )
        result = optimizer.run("global-local")
        assert result.flow == "global-local"
        assert result.global_result is not None
        assert result.local_result is not None
        assert result.timing.total_variation <= (
            mini_problem.baseline.total_variation
        )

    def test_local_only_flow(self, mini_problem, predictor, tech, fast_config):
        optimizer = GlobalLocalOptimizer(
            mini_problem, predictor, tech, fast_config
        )
        result = optimizer.run("local")
        assert result.global_result is None
        assert result.local_result is not None
