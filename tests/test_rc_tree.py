"""RC tree container invariants."""

import pytest

from repro.rc import RCTree


def chain(n: int, res: float = 1.0, cap: float = 1.0) -> RCTree:
    tree = RCTree()
    tree.add_root("n0")
    for i in range(1, n + 1):
        tree.add_node(f"n{i}", f"n{i-1}", res_kohm=res, cap_ff=cap)
    return tree


class TestConstruction:
    def test_root_required_first(self):
        tree = RCTree()
        with pytest.raises(ValueError):
            tree.root

    def test_double_root_rejected(self):
        tree = RCTree()
        tree.add_root("a")
        with pytest.raises(ValueError):
            tree.add_root("b")

    def test_duplicate_node_rejected(self):
        tree = chain(2)
        with pytest.raises(ValueError):
            tree.add_node("n1", "n0", 1.0, 1.0)

    def test_unknown_parent_rejected(self):
        tree = chain(1)
        with pytest.raises(ValueError):
            tree.add_node("x", "nope", 1.0, 1.0)

    def test_negative_rc_rejected(self):
        tree = chain(1)
        with pytest.raises(ValueError):
            tree.add_node("x", "n0", -1.0, 1.0)
        with pytest.raises(ValueError):
            tree.add_cap("n0", -0.5)

    def test_contains_and_len(self):
        tree = chain(3)
        assert "n2" in tree
        assert len(tree) == 4


class TestStructure:
    def test_topological_root_first(self):
        tree = chain(3)
        order = tree.nodes_topological()
        assert order[0] == "n0"
        assert order[-1] == "n3"

    def test_total_cap(self):
        tree = chain(3, cap=2.0)
        assert tree.total_cap_ff() == pytest.approx(6.0)

    def test_add_cap_accumulates(self):
        tree = chain(1)
        tree.add_cap("n1", 5.0)
        assert tree.node("n1").cap_ff == pytest.approx(6.0)

    def test_downstream_caps_chain(self):
        tree = chain(2, cap=1.0)
        down = tree.downstream_caps()
        assert down["n2"] == pytest.approx(1.0)
        assert down["n1"] == pytest.approx(2.0)
        assert down["n0"] == pytest.approx(2.0)

    def test_downstream_caps_branching(self):
        tree = RCTree()
        tree.add_root("r")
        tree.add_node("a", "r", 1.0, 2.0)
        tree.add_node("b", "r", 1.0, 3.0)
        tree.add_node("a1", "a", 1.0, 4.0)
        down = tree.downstream_caps()
        assert down["a"] == pytest.approx(6.0)
        assert down["r"] == pytest.approx(9.0)

    def test_children(self):
        tree = RCTree()
        tree.add_root("r")
        tree.add_node("a", "r", 1.0, 1.0)
        tree.add_node("b", "r", 1.0, 1.0)
        assert set(tree.children("r")) == {"a", "b"}

    def test_validate_ok(self):
        chain(5).validate()
