"""Skew-variation arithmetic (Equations (1)-(3))."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sta.skew import (
    SkewAnalysis,
    normalization_factors,
    normalized_skew_variation,
    pair_skew,
    sum_of_skew_variations,
    worst_pair_variation,
)
from repro.tech.corners import default_corners


@pytest.fixture(scope="module")
def corners():
    return default_corners(("c0", "c1", "c3"))


def latency_fixture():
    """Three sinks at three corners; c1 stretched 2x, c3 shrunk 0.5x."""
    base = {1: 100.0, 2: 120.0, 3: 90.0}
    return {
        "c0": dict(base),
        "c1": {k: 2.0 * v for k, v in base.items()},
        "c3": {k: 0.5 * v for k, v in base.items()},
    }


PAIRS = [(1, 2), (2, 3), (1, 3)]


class TestSkewBasics:
    def test_pair_skew_sign(self):
        lat = latency_fixture()["c0"]
        assert pair_skew(lat, (1, 2)) == pytest.approx(-20.0)
        assert pair_skew(lat, (2, 1)) == pytest.approx(20.0)

    def test_alpha_nominal_is_one(self, corners):
        alphas = normalization_factors(latency_fixture(), PAIRS, corners)
        assert alphas["c0"] == 1.0

    def test_alpha_inverts_uniform_scaling(self, corners):
        alphas = normalization_factors(latency_fixture(), PAIRS, corners)
        assert alphas["c1"] == pytest.approx(0.5)
        assert alphas["c3"] == pytest.approx(2.0)

    def test_uniform_scaling_gives_zero_variation(self, corners):
        """If a corner is a pure rescale of nominal, normalization
        removes all variation — the founding identity of Eq. (1)."""
        lat = latency_fixture()
        alphas = normalization_factors(lat, PAIRS, corners)
        total = sum_of_skew_variations(lat, PAIRS, corners, alphas)
        assert total == pytest.approx(0.0, abs=1e-9)

    def test_nonuniform_corner_yields_variation(self, corners):
        lat = latency_fixture()
        lat["c1"][1] += 30.0  # breaks proportionality for pairs with sink 1
        alphas = normalization_factors(latency_fixture(), PAIRS, corners)
        total = sum_of_skew_variations(lat, PAIRS, corners, alphas)
        assert total > 1.0

    def test_variation_symmetric_in_corner_order(self, corners):
        lat = latency_fixture()
        lat["c1"][2] += 17.0
        alphas = normalization_factors(lat, PAIRS, corners)
        c0 = corners.by_name("c0")
        c1 = corners.by_name("c1")
        v_ab = normalized_skew_variation(lat, (1, 2), c0, c1, alphas)
        v_ba = normalized_skew_variation(lat, (1, 2), c1, c0, alphas)
        assert v_ab == pytest.approx(v_ba)

    def test_worst_pair_variation_is_max(self, corners):
        lat = latency_fixture()
        lat["c1"][1] += 40.0
        alphas = normalization_factors(lat, PAIRS, corners)
        worst = worst_pair_variation(lat, (1, 2), corners, alphas)
        singles = [
            normalized_skew_variation(lat, (1, 2), a, b, alphas)
            for a, b in corners.pairs()
        ]
        assert worst == pytest.approx(max(singles))


class TestSkewAnalysis:
    def test_from_latencies_totals(self, corners):
        lat = latency_fixture()
        lat["c1"][3] -= 25.0
        analysis = SkewAnalysis.from_latencies(lat, PAIRS, corners)
        assert analysis.total_variation == pytest.approx(
            sum(analysis.pair_variation.values())
        )

    def test_local_skew_is_max_abs_pair_skew(self, corners):
        lat = latency_fixture()
        analysis = SkewAnalysis.from_latencies(lat, PAIRS, corners)
        assert analysis.local_skew["c0"] == pytest.approx(30.0)  # |90 - 120|

    def test_external_alphas_respected(self, corners):
        lat = latency_fixture()
        fixed = {"c0": 1.0, "c1": 1.0, "c3": 1.0}
        analysis = SkewAnalysis.from_latencies(lat, PAIRS, corners, alphas=fixed)
        # Without normalization the 2x corner shows raw variation.
        assert analysis.total_variation > 10.0

    def test_degraded_local_skew_detection(self, corners):
        lat = latency_fixture()
        good = SkewAnalysis.from_latencies(lat, PAIRS, corners)
        worse = {k: dict(v) for k, v in lat.items()}
        worse["c0"][2] += 100.0
        bad = SkewAnalysis.from_latencies(worse, PAIRS, corners)
        assert bad.degraded_local_skew(good)
        assert not good.degraded_local_skew(bad)

    @given(st.floats(1.05, 3.0), st.floats(0.2, 0.95))
    @settings(max_examples=30)
    def test_pure_rescale_invariance_property(self, f1, f3):
        corners = default_corners(("c0", "c1", "c3"))
        base = {1: 100.0, 2: 137.0, 3: 81.0, 4: 150.0}
        lat = {
            "c0": dict(base),
            "c1": {k: f1 * v for k, v in base.items()},
            "c3": {k: f3 * v for k, v in base.items()},
        }
        pairs = [(1, 2), (3, 4), (1, 4)]
        analysis = SkewAnalysis.from_latencies(lat, pairs, corners)
        assert analysis.total_variation == pytest.approx(0.0, abs=1e-6)
