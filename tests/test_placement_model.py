"""Continuous buffer-location model (future-work item (ii))."""

import pytest

from repro.core.ml.training import train_predictor
from repro.core.placement_model import (
    LocationModel,
    _solve_quadratic_max,
    apply_location_model,
    fit_location_model,
    refine_buffers,
)


@pytest.fixture(scope="module")
def predictor(library_cls1):
    return train_predictor(library_cls1, [], "full_rsmt_d2m")


class TestQuadraticSolve:
    def test_concave_interior_maximum(self):
        # f = -(dx-3)^2 - (dy+2)^2 -> max at (3, -2).
        coeffs = (-13.0, 6.0, -4.0, -1.0, -1.0, 0.0)
        dx, dy = _solve_quadratic_max(coeffs, radius=10.0)
        assert dx == pytest.approx(3.0)
        assert dy == pytest.approx(-2.0)

    def test_convex_falls_back_to_boundary(self):
        # f = dx^2 + dy^2: maximum on the square boundary corners.
        coeffs = (0.0, 0.0, 0.0, 1.0, 1.0, 0.0)
        dx, dy = _solve_quadratic_max(coeffs, radius=5.0)
        assert abs(dx) == pytest.approx(5.0)
        assert abs(dy) == pytest.approx(5.0)

    def test_interior_optimum_outside_range_clamped(self):
        # Concave with stationary point far outside the square.
        coeffs = (0.0, 100.0, 0.0, -0.1, -0.1, 0.0)
        dx, dy = _solve_quadratic_max(coeffs, radius=5.0)
        assert dx == pytest.approx(5.0)


class TestLocationModel:
    def test_predict_matches_coefficients(self):
        model = LocationModel(
            buffer=1,
            radius_um=10.0,
            coefficients=(1.0, 0.5, -0.5, 0.0, 0.0, 0.0),
            optimal_offset=(0.0, 0.0),
            predicted_reduction_ps=1.0,
        )
        assert model.predict(2.0, 2.0) == pytest.approx(1.0 + 1.0 - 1.0)

    def test_fit_produces_bounded_optimum(self, mini_problem, predictor):
        tree = mini_problem.design.tree
        result = mini_problem.baseline
        buffer = sorted(tree.buffers())[0]
        model = fit_location_model(
            mini_problem, tree, result, predictor, buffer, radius_um=15.0
        )
        dx, dy = model.optimal_offset
        assert abs(dx) <= 15.0 and abs(dy) <= 15.0

    def test_small_grid_rejected(self, mini_problem, predictor):
        tree = mini_problem.design.tree
        with pytest.raises(ValueError):
            fit_location_model(
                mini_problem,
                tree,
                mini_problem.baseline,
                predictor,
                tree.buffers()[0],
                grid=2,
            )

    def test_apply_returns_clone(self, mini_problem, predictor):
        tree = mini_problem.design.tree
        buffer = sorted(tree.buffers())[0]
        model = fit_location_model(
            mini_problem, tree, mini_problem.baseline, predictor, buffer
        )
        trial, timing = apply_location_model(mini_problem, tree, model)
        assert trial is not tree
        assert timing.total_variation > 0.0


@pytest.mark.slow
class TestRefinement:
    def test_refinement_never_worsens(self, mini_problem, predictor):
        tree = mini_problem.design.tree
        buffers = sorted(tree.buffers())[:6]
        refined, accepted = refine_buffers(
            mini_problem, tree, predictor, buffers=buffers
        )
        refined.validate()
        final = mini_problem.evaluate(refined)
        assert (
            final.total_variation
            <= mini_problem.baseline.total_variation + 1e-6
        )
        for model in accepted:
            assert model.predicted_reduction_ps > 0.0
