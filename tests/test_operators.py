"""ECO operators: displacement, sizing, surgery, arc rebuilds."""

import pytest

from repro.eco.legalize import Legalizer
from repro.eco.operators import (
    apply_displacement,
    apply_sizing,
    apply_tree_surgery,
    rebuild_arc,
)
from repro.eco.router import reroute_edge
from repro.geometry import BBox, Point
from repro.netlist.arcs import extract_arcs
from repro.netlist.tree import ClockTree


@pytest.fixture()
def ctx():
    region = BBox(0, 0, 600, 600)
    legalizer = Legalizer(region=region, pitch_um=5.0)
    tree = ClockTree()
    src = tree.add_source(Point(0, 300))
    top = tree.add_buffer(src, Point(100, 300), 16)
    mid = tree.add_buffer(top, Point(250, 300), 8)
    leaf = tree.add_buffer(mid, Point(400, 300), 8)
    s1 = tree.add_sink(leaf, Point(450, 320))
    s2 = tree.add_sink(leaf, Point(450, 280))
    s3 = tree.add_sink(leaf, Point(430, 340))
    return region, legalizer, tree, dict(
        src=src, top=top, mid=mid, leaf=leaf, s1=s1, s2=s2, s3=s3
    )


class TestDisplacement:
    def test_moves_and_legalizes(self, ctx):
        _, legalizer, tree, n = ctx
        new_loc = apply_displacement(tree, legalizer, n["mid"], 10.0, -10.0)
        assert tree.node(n["mid"]).location == new_loc
        assert new_loc.x % 5.0 == 0.0

    def test_clears_vias(self, ctx):
        region, legalizer, tree, n = ctx
        reroute_edge(tree, n["mid"], 300.0, region)
        assert tree.node(n["mid"]).via
        apply_displacement(tree, legalizer, n["mid"], 10.0, 0.0)
        assert tree.node(n["mid"]).via == ()


class TestSizingAndSurgery:
    def test_sizing(self, ctx):
        _, _, tree, n = ctx
        apply_sizing(tree, n["leaf"], 16)
        assert tree.node(n["leaf"]).size == 16

    def test_surgery_rewires(self, ctx):
        _, _, tree, n = ctx
        apply_tree_surgery(tree, n["s3"], n["mid"])
        assert tree.parent(n["s3"]) == n["mid"]
        tree.validate()


class TestRebuildArc:
    def arc_between(self, tree, start, end):
        arcs = extract_arcs(tree)
        return next(a for a in arcs if a.start == start and a.end == end)

    def test_rebuild_replaces_interior(self, ctx):
        region, legalizer, tree, n = ctx
        arc = self.arc_between(tree, n["src"], n["leaf"])
        assert arc.interior == (n["top"], n["mid"])
        result = rebuild_arc(
            tree,
            legalizer,
            arc.start,
            arc.end,
            arc.interior,
            size=16,
            pair_count=3,
            spacing_um=100.0,
            region=region,
        )
        tree.validate()
        assert len(result.inserted_ids) == 3
        assert n["top"] not in tree and n["mid"] not in tree
        # New chain threads from src to leaf.
        path = tree.path_to_root(n["leaf"])
        assert all(nid in path for nid in result.inserted_ids)

    def test_rebuild_zero_pairs_is_wire_only(self, ctx):
        region, legalizer, tree, n = ctx
        arc = self.arc_between(tree, n["src"], n["leaf"])
        result = rebuild_arc(
            tree,
            legalizer,
            arc.start,
            arc.end,
            arc.interior,
            size=8,
            pair_count=0,
            spacing_um=50.0,
            region=region,
        )
        assert result.pair_count == 0
        assert tree.parent(n["leaf"]) == n["src"]
        tree.validate()

    def test_wire_target_realizes_detour(self, ctx):
        region, legalizer, tree, n = ctx
        arc = self.arc_between(tree, n["src"], n["leaf"])
        direct = tree.node(n["src"]).location.manhattan(
            tree.node(n["leaf"]).location
        )
        result = rebuild_arc(
            tree,
            legalizer,
            arc.start,
            arc.end,
            arc.interior,
            size=8,
            pair_count=0,
            spacing_um=50.0,
            region=region,
            wire_target_um=direct + 120.0,
        )
        assert result.route_length_um == pytest.approx(direct + 120.0, abs=5.0)

    def test_detour_when_chain_exceeds_direct(self, ctx):
        region, legalizer, tree, n = ctx
        arc = self.arc_between(tree, n["src"], n["leaf"])
        direct = tree.node(n["src"]).location.manhattan(
            tree.node(n["leaf"]).location
        )
        result = rebuild_arc(
            tree,
            legalizer,
            arc.start,
            arc.end,
            arc.interior,
            size=8,
            pair_count=4,
            spacing_um=150.0,  # chain 5*150 = 750 > direct 400
            region=region,
        )
        tree.validate()
        assert result.route_length_um > direct * 1.3

    def test_bad_interior_rejected(self, ctx):
        region, legalizer, tree, n = ctx
        with pytest.raises(ValueError):
            rebuild_arc(
                tree,
                legalizer,
                n["src"],
                n["leaf"],
                interior=(n["top"],),  # missing mid
                size=8,
                pair_count=1,
                spacing_um=50.0,
                region=region,
            )

    def test_invalid_args_rejected(self, ctx):
        region, legalizer, tree, n = ctx
        arc = self.arc_between(tree, n["src"], n["leaf"])
        with pytest.raises(ValueError):
            rebuild_arc(
                tree, legalizer, arc.start, arc.end, arc.interior,
                size=8, pair_count=-1, spacing_um=50.0,
            )
        with pytest.raises(ValueError):
            rebuild_arc(
                tree, legalizer, arc.start, arc.end, arc.interior,
                size=8, pair_count=1, spacing_um=0.0,
            )


class TestRerouteEdge:
    def test_direct_when_target_short(self, ctx):
        region, _, tree, n = ctx
        realized = reroute_edge(tree, n["mid"], 10.0, region)
        assert realized == pytest.approx(150.0)  # manhattan distance
        assert tree.node(n["mid"]).via == ()

    def test_detour_length(self, ctx):
        region, _, tree, n = ctx
        realized = reroute_edge(tree, n["mid"], 250.0, region)
        assert realized == pytest.approx(250.0, abs=4.0)

    def test_root_edge_rejected(self, ctx):
        region, _, tree, n = ctx
        with pytest.raises(ValueError):
            reroute_edge(tree, n["src"], 100.0, region)
