"""Differential tests: IncrementalTimer vs the golden oracle.

The incremental engine's contract is that it produces the golden timer's
numbers — not an approximation of them.  Every test here drives both
engines over the same tree states and requires agreement to ``TOL_PS``
(1e-9 ps, far tighter than any physical relevance) on every artifact:
per-node arrivals, slews, driver delays and loads, edge delays, sink
latencies, and the skew-variation objective.

The property-style test applies hundreds of randomized Table-2 moves
(types I/II/III) with interleaved undos and commits, across all corners
and both wire metrics, re-verifying the full state after every step.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.moves import (
    MoveType,
    apply_move_undoable,
    enumerate_moves,
    undo_move,
)
from repro.core.objective import SkewVariationProblem
from repro.sta.incremental import IncrementalTimer
from repro.sta.timer import GoldenTimer
from repro.testcases.cls1 import build_cls1
from repro.testcases.mini import build_mini

TOL_PS = 1e-9


@pytest.fixture(scope="module")
def cls1_design():
    return build_cls1(1)


@pytest.fixture(scope="module")
def mini4_design():
    """MINI at the full four-corner set (c0..c3)."""
    return build_mini(corner_names=("c0", "c1", "c2", "c3"))


def _assert_dict_close(got, want, label):
    assert set(got) == set(want), f"{label}: key sets differ"
    for key, value in want.items():
        assert got[key] == pytest.approx(value, abs=TOL_PS), (
            f"{label}[{key}]: {got[key]!r} != {value!r}"
        )


def _assert_matches_golden(tree, golden, inc_result, pairs):
    """Full-artifact comparison of an incremental result vs fresh golden."""
    want = golden.time_tree(tree, pairs)
    for name, want_ct in want.per_corner.items():
        got_ct = inc_result.per_corner[name]
        _assert_dict_close(got_ct.arrival, want_ct.arrival, f"{name}.arrival")
        _assert_dict_close(
            got_ct.input_slew, want_ct.input_slew, f"{name}.input_slew"
        )
        _assert_dict_close(
            got_ct.driver_delay, want_ct.driver_delay, f"{name}.driver_delay"
        )
        _assert_dict_close(
            got_ct.driver_load, want_ct.driver_load, f"{name}.driver_load"
        )
        _assert_dict_close(
            got_ct.edge_delay, want_ct.edge_delay, f"{name}.edge_delay"
        )
        _assert_dict_close(
            got_ct.edge_elmore, want_ct.edge_elmore, f"{name}.edge_elmore"
        )
    for name, lat in want.latencies.items():
        _assert_dict_close(inc_result.latencies[name], lat, f"{name}.latency")
    assert inc_result.total_variation == pytest.approx(
        want.total_variation, abs=TOL_PS
    )


@pytest.mark.parametrize("metric", ["d2m", "elmore"])
def test_full_attach_matches_golden_mini(mini_design, metric):
    design = mini_design
    golden = GoldenTimer(design.library, wire_metric=metric)
    inc = IncrementalTimer(design.library, wire_metric=metric)
    result = inc.time_tree(design.tree, design.pairs)
    _assert_matches_golden(design.tree, golden, result, design.pairs)
    assert inc.stats["full_passes"] == 1


def test_full_attach_matches_golden_cls1(cls1_design):
    design = cls1_design
    golden = GoldenTimer(design.library)
    inc = IncrementalTimer(design.library)
    result = inc.time_tree(design.tree, design.pairs)
    _assert_matches_golden(design.tree, golden, result, design.pairs)


def test_reattach_is_cached(mini_design):
    """A second time_tree on the same tree state runs no net evals."""
    inc = IncrementalTimer(mini_design.library)
    inc.time_tree(mini_design.tree, mini_design.pairs)
    evals = inc.stats["net_evals"]
    inc.time_tree(mini_design.tree, mini_design.pairs)
    assert inc.stats["net_evals"] == evals
    # A clone is a different object but identical geometry: attaching to
    # it re-propagates entirely from the net cache.
    clone = mini_design.tree.clone()
    inc.time_tree(clone, mini_design.pairs)
    assert inc.stats["net_evals"] == evals


def _run_move_property(design, metric, steps, commit_every, seed):
    """Randomized move/undo walk, verifying full state at every step."""
    golden = GoldenTimer(design.library, wire_metric=metric)
    inc = IncrementalTimer(design.library, wire_metric=metric)
    rng = np.random.default_rng(seed)
    tree = design.tree.clone()
    pairs = design.pairs

    inc.ensure(tree)
    applied = 0
    committed = 0
    by_type = {t: 0 for t in MoveType}

    def grouped(all_moves):
        groups = {t: [m for m in all_moves if m.type is t] for t in MoveType}
        return {t: ms for t, ms in groups.items() if ms}

    moves = grouped(enumerate_moves(tree, design.library))
    while applied < steps:
        if not moves:
            break
        # Stratified sampling: rotate through the move classes so short
        # walks still exercise type III (rare in uniform draws).
        types = sorted(moves, key=lambda t: t.value)
        pick = types[applied % len(types)]
        pool = moves[pick]
        move = pool[int(rng.integers(len(pool)))]
        undo = apply_move_undoable(
            tree, design.legalizer, design.library, move
        )
        applied += 1
        by_type[move.type] += 1
        commit = applied % commit_every == 0
        if commit:
            result = inc.advance(tree, undo.dirty, pairs)
            committed += 1
            # The committed state changes the move universe.
            moves = grouped(enumerate_moves(tree, design.library))
        else:
            result = inc.preview(tree, undo.dirty, pairs)
        _assert_matches_golden(tree, golden, result, pairs)
        if not commit:
            undo_move(tree, undo)
            inc.rebase(tree)
    assert applied >= steps
    assert committed > 0
    # The walk must exercise every move class.
    assert all(count > 0 for count in by_type.values()), by_type
    # After all the undo round-trips, the retained state still matches a
    # from-scratch golden pass of the final tree.
    _assert_matches_golden(
        tree, golden, inc.time_tree(tree, pairs), pairs
    )
    assert inc.stats["retimes"] == applied


@pytest.mark.parametrize(
    "metric,steps,seed",
    [("d2m", 120, 2015), ("elmore", 90, 607)],
)
def test_property_random_moves_all_corners(mini4_design, metric, steps, seed):
    """≥200 randomized type I/II/III applications across both metrics.

    Interleaves previews (undone) with commits (kept) on the four-corner
    MINI design; every single step is checked against a fresh golden
    full-tree analysis at every corner.
    """
    _run_move_property(
        mini4_design, metric, steps=steps, commit_every=7, seed=seed
    )


def test_property_moves_cls1(cls1_design):
    """A shorter randomized walk at CLS1v1 scale (496 nodes, 3 corners)."""
    _run_move_property(
        cls1_design, "d2m", steps=24, commit_every=5, seed=42
    )


def test_evaluate_move_leaves_tree_and_engine_intact(mini_design):
    """The problem-level trial API restores the tree bit-exactly."""
    problem = SkewVariationProblem.create(mini_design)
    tree = mini_design.tree.clone()
    before = problem.evaluate(tree)
    moves = enumerate_moves(tree, mini_design.library)
    rng = np.random.default_rng(3)
    picks = [moves[int(rng.integers(len(moves)))] for _ in range(12)]
    for move in picks:
        trial = problem.evaluate_move(tree, move)
        # Trial timing equals golden timing of the mutated clone.
        clone = tree.clone()
        from repro.core.moves import apply_move

        apply_move(clone, mini_design.legalizer, mini_design.library, move)
        want = problem.timer.time_tree(
            clone, problem.pairs, alphas=problem.alphas
        )
        assert trial.total_variation == pytest.approx(
            want.total_variation, abs=TOL_PS
        )
        # And the tree is back: evaluating it reproduces the baseline.
        after = problem.evaluate(tree)
        assert after.total_variation == pytest.approx(
            before.total_variation, abs=TOL_PS
        )


def test_commit_move_adopts_state(mini_design):
    problem = SkewVariationProblem.create(mini_design)
    tree = mini_design.tree.clone()
    moves = enumerate_moves(tree, mini_design.library)
    move = moves[len(moves) // 2]
    committed = problem.commit_move(tree, move)
    want = problem.timer.time_tree(tree, problem.pairs, alphas=problem.alphas)
    assert committed.total_variation == pytest.approx(
        want.total_variation, abs=TOL_PS
    )
    # Engine stays attached: the follow-up evaluation is retime-free.
    engine = problem.engine()
    passes = engine.stats["full_passes"]
    problem.evaluate(tree)
    assert engine.stats["full_passes"] == passes


def test_stale_tree_falls_back_to_full_pass(mini_design):
    """Out-of-band surgery (no dirty set) is caught by the revision stamp."""
    inc = IncrementalTimer(mini_design.library)
    tree = mini_design.tree.clone()
    inc.time_tree(tree, mini_design.pairs)
    passes = inc.stats["full_passes"]
    buffers = sorted(tree.buffers())
    victim = buffers[len(buffers) // 2]
    tree.move_node(victim, tree.node(victim).location.translated(5.0, 0.0))
    result = inc.time_tree(tree, mini_design.pairs)
    assert inc.stats["full_passes"] == passes + 1
    golden = GoldenTimer(mini_design.library)
    _assert_matches_golden(tree, golden, result, mini_design.pairs)


def test_preview_requires_attachment(mini_design):
    inc = IncrementalTimer(mini_design.library)
    tree = mini_design.tree.clone()
    with pytest.raises(ValueError):
        inc.preview(tree, frozenset({tree.root}), mini_design.pairs)
