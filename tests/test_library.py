"""Library container: per-corner cells, wires, and sizing helpers."""

import pytest

from repro.tech.library import DEFAULT_SIZES


class TestDefaultLibrary:
    def test_five_sizes(self, library):
        assert library.sizes == DEFAULT_SIZES
        assert len(library.sizes) == 5

    def test_cells_exist_for_every_size_corner(self, library):
        for corner in library.corners:
            for size in library.sizes:
                cell = library.cell(size, corner)
                assert cell.size == size

    def test_missing_size_raises(self, library):
        with pytest.raises(KeyError):
            library.cell(7, library.corners.nominal)

    def test_corner_ordering_of_cell_delay(self, library):
        """The same cell is slower at c1 and faster at c3 than at c0."""
        by_name = {c.name: c for c in library.corners}
        d = {
            name: library.cell(8, by_name[name]).delay(20.0, 8.0)
            for name in ("c0", "c1", "c3")
        }
        assert d["c1"] > d["c0"] > d["c3"]

    def test_input_cap_corner_invariant(self, library):
        caps = {
            corner.name: library.cell(16, corner).input_cap_ff
            for corner in library.corners
        }
        assert len(set(caps.values())) == 1

    def test_step_size_up_down(self, library):
        assert library.step_size(8, +1) == 16
        assert library.step_size(8, -1) == 4

    def test_step_size_clamps_at_ends(self, library):
        assert library.step_size(2, -1) == 2
        assert library.step_size(32, +1) == 32

    def test_size_index(self, library):
        assert library.size_index(2) == 0
        assert library.size_index(32) == 4

    def test_wire_per_corner(self, library):
        for corner in library.corners:
            wire = library.wire(corner)
            assert wire.corner == corner

    def test_gate_factor_nominal_is_one(self, library):
        assert library.gate_factor(library.corners.nominal) == pytest.approx(1.0)

    def test_sink_cap_positive(self, library):
        assert library.sink_cap_ff > 0

    def test_subset_library_corners(self, library_cls1):
        assert [c.name for c in library_cls1.corners] == ["c0", "c1", "c3"]
