"""Derating model: the physical ordering of corner delay factors."""

import pytest

from repro.tech.corners import TABLE3_CORNERS
from repro.tech.derating import (
    DerateModel,
    alpha_power_delay_factor,
    threshold_voltage,
)


@pytest.fixture(scope="module")
def derate():
    return DerateModel(reference=TABLE3_CORNERS["c0"])


class TestAlphaPower:
    def test_lower_voltage_is_slower(self):
        vth = 0.4
        assert alpha_power_delay_factor(0.75, vth) > alpha_power_delay_factor(
            0.9, vth
        )

    def test_higher_vth_is_slower(self):
        assert alpha_power_delay_factor(0.9, 0.42) > alpha_power_delay_factor(
            0.9, 0.30
        )

    def test_insufficient_overdrive_rejected(self):
        with pytest.raises(ValueError):
            alpha_power_delay_factor(0.40, 0.38)


class TestThresholdVoltage:
    def test_process_ordering(self):
        assert threshold_voltage("ss", 25.0) > threshold_voltage("tt", 25.0)
        assert threshold_voltage("tt", 25.0) > threshold_voltage("ff", 25.0)

    def test_vth_drops_with_temperature(self):
        assert threshold_voltage("ss", 125.0) < threshold_voltage("ss", -25.0)

    def test_unknown_process_rejected(self):
        with pytest.raises(ValueError):
            threshold_voltage("xx", 25.0)


class TestDerateModel:
    def test_reference_factor_is_one(self, derate):
        assert derate.gate_factor(TABLE3_CORNERS["c0"]) == pytest.approx(1.0)

    def test_corner_delay_ordering(self, derate):
        """c1 (lower V, ss) slowest; c3 (ff, highest V) fastest."""
        factors = {
            name: derate.gate_factor(TABLE3_CORNERS[name])
            for name in ("c0", "c1", "c2", "c3")
        }
        assert factors["c1"] > factors["c0"] > factors["c2"] > factors["c3"]

    def test_slow_corner_in_plausible_band(self, derate):
        """c1/c0 gate ratio should look like a 0.9V->0.75V ss derate."""
        ratio = derate.gate_factor(TABLE3_CORNERS["c1"])
        assert 1.3 < ratio < 2.3

    def test_fast_corners_in_plausible_band(self, derate):
        for name in ("c2", "c3"):
            ratio = derate.gate_factor(TABLE3_CORNERS[name])
            assert 0.2 < ratio < 0.7

    def test_wire_factors_depend_only_on_beol(self, derate):
        c1 = TABLE3_CORNERS["c1"]  # Cmax, same as reference
        c2 = TABLE3_CORNERS["c2"]  # Cmin
        assert derate.wire_cap_factor(c1) == pytest.approx(1.0)
        assert derate.wire_cap_factor(c2) < 1.0
        assert derate.wire_res_factor(c2) < 1.0
